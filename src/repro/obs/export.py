"""Trace exporters: JSONL event logs, Chrome ``trace_event``, ASCII.

Three consumers, three formats:

* :func:`write_events_jsonl` / :func:`read_events_jsonl` -- one JSON
  object per line, lossless round-trip of :class:`~repro.obs.tracer.TraceEvent`
  records plus a leading ``meta`` line.  The grep-able archival format.
* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  ``trace_event`` JSON loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Point events become instants, ``epoch`` events
  become duration slices on a virtual-time track, and the engine's
  ``phase_ns`` wall-time breakdown becomes an aggregate slice track.
* :func:`ascii_timeline` -- a terminal-friendly per-category event-rate
  timeline built on :mod:`repro.analysis.ascii`.

Timestamps: trace events carry *virtual* nanoseconds; Chrome's ``ts``
unit is microseconds, so virtual ns are divided by 1e3 -- one simulated
millisecond reads as one millisecond in Perfetto.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.tracer import TraceEvent, Tracer, level_name

#: Synthetic pid/tids for the Chrome export's tracks.
_PID = 1
_TID_EVENTS = 1
_TID_EPOCHS = 2
_TID_PHASES = 3

#: Canonical order of the engine's wall-time phases in rendered output
#: (generation first -- it feeds every later stage); unknown phase names
#: sort after these in insertion order.
PHASE_ORDER = ("gen_ns", "sample_ns", "tlb_ns", "policy_ns")


def ordered_phases(phase_ns: Dict[str, float]) -> List[Tuple[str, float]]:
    """``phase_ns`` items with canonical phases first, others appended."""
    known = [(name, float(phase_ns[name]))
             for name in PHASE_ORDER if name in phase_ns]
    extra = [(name, float(ns)) for name, ns in phase_ns.items()
             if name not in PHASE_ORDER]
    return known + extra


# -- JSONL ---------------------------------------------------------------------


def write_events_jsonl(
    path: str,
    events: Sequence[TraceEvent],
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a ``meta`` line plus one event per line; returns event count."""
    with open(path, "w") as fh:
        fh.write(json.dumps({"type": "meta", **(meta or {})}) + "\n")
        for event in events:
            fh.write(json.dumps(
                {"type": "event", **event.to_json_dict()}
            ) + "\n")
    return len(events)


def read_events_jsonl(path: str) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Inverse of :func:`write_events_jsonl`: ``(meta, events)``."""
    meta: Dict[str, Any] = {}
    events: List[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", "event")
            if kind == "meta":
                meta = record
            else:
                events.append(TraceEvent.from_json_dict(record))
    return meta, events


# -- Chrome trace_event --------------------------------------------------------


def chrome_trace(
    events: Sequence[TraceEvent],
    phase_ns: Optional[Dict[str, float]] = None,
    meta: Optional[Dict[str, Any]] = None,
    title: str = "repro-memtis",
) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document (JSON-ready dict)."""
    trace_events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": _PID,
         "args": {"name": title}},
        {"name": "thread_name", "ph": "M", "pid": _PID, "tid": _TID_EVENTS,
         "args": {"name": "events (virtual time)"}},
        {"name": "thread_name", "ph": "M", "pid": _PID, "tid": _TID_EPOCHS,
         "args": {"name": "epochs (virtual time)"}},
    ]
    for event in events:
        payload = event.to_json_dict()
        args = payload["args"]
        args["level"] = level_name(event.level)
        if event.cat == "epoch":
            dur_ns = float(args.get("dur_ns", 0.0))
            trace_events.append({
                "name": event.name, "cat": event.cat, "ph": "X",
                "ts": payload["ts_ns"] / 1e3, "dur": dur_ns / 1e3,
                "pid": _PID, "tid": _TID_EPOCHS, "args": args,
            })
        else:
            trace_events.append({
                "name": event.name, "cat": event.cat, "ph": "i",
                "ts": payload["ts_ns"] / 1e3, "pid": _PID,
                "tid": _TID_EVENTS, "s": "t", "args": args,
            })
    if phase_ns:
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": _TID_PHASES,
            "args": {"name": "wall-time phases (aggregate)"},
        })
        cursor = 0.0
        for phase, ns in ordered_phases(phase_ns):
            trace_events.append({
                "name": phase, "cat": "phase", "ph": "X",
                "ts": cursor / 1e3, "dur": ns / 1e3,
                "pid": _PID, "tid": _TID_PHASES,
                "args": {"wall_ns": ns},
            })
            cursor += ns
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def write_chrome_trace(
    path: str,
    events: Sequence[TraceEvent],
    phase_ns: Optional[Dict[str, float]] = None,
    meta: Optional[Dict[str, Any]] = None,
    title: str = "repro-memtis",
) -> int:
    """Serialise :func:`chrome_trace` to ``path``; returns event count."""
    doc = chrome_trace(events, phase_ns=phase_ns, meta=meta, title=title)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(events)


# -- ASCII ---------------------------------------------------------------------


def ascii_timeline(
    events: Sequence[TraceEvent],
    width: int = 64,
    height: int = 12,
    title: Optional[str] = "trace events over virtual time",
) -> str:
    """Per-category event-count timeline rendered as characters."""
    from repro.analysis.ascii import event_timeline

    return event_timeline(events, width=width, height=height, title=title)


# -- convenience over a whole tracer/run ---------------------------------------


def export_tracer(
    tracer: Tracer,
    path: str,
    fmt: Optional[str] = None,
    phase_ns: Optional[Dict[str, float]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a tracer's buffered events to ``path`` in ``fmt``.

    ``fmt`` is ``"chrome"``, ``"jsonl"`` or ``"ascii"``; ``None`` infers
    from the extension (``.jsonl`` -> jsonl, ``.txt`` -> ascii, else
    chrome).  Returns the number of events exported.
    """
    if fmt is None:
        lower = path.lower()
        if lower.endswith(".jsonl"):
            fmt = "jsonl"
        elif lower.endswith(".txt"):
            fmt = "ascii"
        else:
            fmt = "chrome"
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    events = tracer.events()
    full_meta = {**(meta or {}), "tracer": tracer.stats()}
    if phase_ns:
        full_meta["phase_ns"] = {k: float(v) for k, v in phase_ns.items()}
    if fmt == "jsonl":
        return write_events_jsonl(path, events, meta=full_meta)
    if fmt == "chrome":
        return write_chrome_trace(path, events, phase_ns=phase_ns,
                                  meta=full_meta)
    if fmt == "ascii":
        text = ascii_timeline(events)
        if phase_ns:
            from repro.analysis.ascii import bar_chart

            phases = ordered_phases(phase_ns)
            text += "\n\n" + bar_chart(
                [name for name, _ in phases],
                [ns / 1e6 for _, ns in phases],
                title="wall-time phases (ms)",
            )
        with open(path, "w") as fh:
            fh.write(text + "\n")
        return len(events)
    raise ValueError(
        f"unknown trace export format {fmt!r}; "
        "expected 'chrome', 'jsonl' or 'ascii'"
    )
