"""OpenMetrics text exposition over heartbeats and counter registries.

External scrapers (Prometheus, a CI log grepper) should not need to
parse our heartbeat JSON.  This module renders the same status in the
OpenMetrics text exposition format
(https://prometheus.io/docs/specs/om/open_metrics_spec/):

* ``# TYPE`` metadata precedes every family's samples;
* counter sample names carry the ``_total`` suffix;
* label values escape ``\\``, ``"`` and newlines;
* the exposition ends with the mandatory ``# EOF`` line.

Two entry points: :func:`sweep_exposition` renders a live sweep's
heartbeat cells (what ``repro top --openmetrics`` serves), and
:func:`counters_exposition` renders one run's
:class:`~repro.obs.counters.CounterRegistry` (distributions expand to
``_count``/``_sum``/``_min``/``_max``/``_mean`` gauges).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.obs.heartbeat import aggregate, display_state

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitise an arbitrary string into a legal metric name."""
    name = _NAME_BAD_CHARS.sub("_", name)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def escape_label(value: Any) -> str:
    """Escape a label value per the exposition-format grammar."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{metric_name(str(k))}="{escape_label(v)}"'
        for k, v in labels.items()
    )
    return "{" + inner + "}"


def _num(value: Any) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Family:
    """One metric family: TYPE line plus its samples, emitted together."""

    def __init__(self, name: str, kind: str, out: List[str]):
        self.name = metric_name(name)
        self.kind = kind
        self.out = out
        out.append(f"# TYPE {self.name} {kind}")

    def sample(self, value: Any, labels: Optional[Dict[str, Any]] = None
               ) -> None:
        suffix = "_total" if self.kind == "counter" else ""
        self.out.append(
            f"{self.name}{suffix}{_labels(labels or {})} {_num(value)}"
        )


def _sweep_families(out: List[str], cells: List[Dict[str, Any]],
                    manifest: Optional[Dict[str, Any]] = None) -> None:
    """Append the per-sweep/per-cell families (no ``# EOF``)."""
    agg = aggregate(cells)
    total = len((manifest or {}).get("cells", [])) or agg["cells"]

    fam = _Family("repro_sweep_cells", "gauge", out)
    fam.sample(total, {"state": "all"})
    for state in sorted(agg["states"]):
        fam.sample(agg["states"][state], {"state": state})
    _Family("repro_sweep_accesses_per_second", "gauge", out).sample(
        agg["running_accesses_per_sec"]
    )
    _Family("repro_sweep_violations", "gauge", out).sample(agg["violations"])

    def cell_labels(cell: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "cell": cell.get("key", ""),
            "workload": cell.get("workload", ""),
            "policy": cell.get("policy", ""),
            "state": display_state(cell),
        }

    progress = _Family("repro_cell_progress_ratio", "gauge", out)
    for cell in cells:
        progress.sample(float(cell.get("progress") or 0.0), cell_labels(cell))
    epoch = _Family("repro_cell_epoch", "gauge", out)
    for cell in cells:
        epoch.sample(int(cell.get("epoch") or 0), cell_labels(cell))
    accesses = _Family("repro_cell_accesses", "counter", out)
    for cell in cells:
        accesses.sample(int(cell.get("accesses") or 0), cell_labels(cell))
    rate = _Family("repro_cell_accesses_per_second", "gauge", out)
    for cell in cells:
        rate.sample(float(cell.get("accesses_per_sec") or 0.0),
                    cell_labels(cell))
    resumed = _Family("repro_cell_resumed", "gauge", out)
    for cell in cells:
        resumed.sample(1 if cell.get("resumed") else 0, cell_labels(cell))


def sweep_exposition(cells: List[Dict[str, Any]],
                     manifest: Optional[Dict[str, Any]] = None) -> str:
    """Render heartbeat cells as an OpenMetrics exposition document."""
    out: List[str] = []
    _sweep_families(out, cells, manifest)
    out.append("# EOF")
    return "\n".join(out) + "\n"


def service_exposition(status: Dict[str, Any]) -> str:
    """Render a service ``build_status`` snapshot as OpenMetrics text.

    Queue and worker families first (job states, lease/attempt/expiry
    counters), then the same per-cell heartbeat families a plain sweep
    exposes -- one scrape covers both layers.
    """
    out: List[str] = []
    jobs = _Family("repro_service_jobs", "gauge", out)
    for state in sorted(status.get("jobs", {})):
        jobs.sample(status["jobs"][state], {"state": state})
    workers = status.get("workers", [])
    by_state: Dict[str, int] = {}
    for worker in workers:
        state = str(worker.get("state", "unknown"))
        by_state[state] = by_state.get(state, 0) + 1
    wfam = _Family("repro_service_workers", "gauge", out)
    wfam.sample(len(workers), {"state": "all"})
    for state in sorted(by_state):
        wfam.sample(by_state[state], {"state": state})
    totals = status.get("totals", {})
    _Family("repro_service_claims", "counter", out).sample(
        totals.get("claims", 0))
    _Family("repro_service_attempts", "counter", out).sample(
        totals.get("attempts", 0))
    _Family("repro_service_lease_expirations", "counter", out).sample(
        totals.get("expirations", 0))
    _Family("repro_service_resumed_jobs", "gauge", out).sample(
        totals.get("resumed", 0))
    _Family("repro_service_drained", "gauge", out).sample(
        1 if status.get("drained") else 0)
    _sweep_families(out, status.get("heartbeats", []),
                    manifest=status.get("manifest"))
    out.append("# EOF")
    return "\n".join(out) + "\n"


def counters_exposition(counters: Dict[str, Any], prefix: str = "repro"
                        ) -> str:
    """Render a flat ``CounterRegistry.as_dict()`` as OpenMetrics text.

    Counters (int values) become counter families; floats become
    gauges; distribution stat dicts expand into one gauge per moment.
    ``None`` values (empty distributions' moments) are skipped.
    """
    out: List[str] = []
    for name in sorted(counters):
        value = counters[name]
        base = metric_name(f"{prefix}_{name}")
        if isinstance(value, dict):
            for stat in ("count", "sum", "min", "max", "mean"):
                stat_value = value.get(stat)
                if stat_value is None:
                    continue
                _Family(f"{base}_{stat}", "gauge", out).sample(stat_value)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        elif isinstance(value, int):
            _Family(base, "counter", out).sample(value)
        else:
            _Family(base, "gauge", out).sample(value)
    out.append("# EOF")
    return "\n".join(out) + "\n"
