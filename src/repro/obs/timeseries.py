"""Per-epoch metric time series: a columnar ring buffer over the registry.

End-of-run counters answer *what happened*; MEMTIS's argument is about
*when* -- thresholds adapting, split decisions firing, migration traffic
ramping as the hot set drifts.  :class:`MetricsTimeSeries` captures that
trajectory by snapshotting the run's
:class:`~repro.obs.counters.CounterRegistry` at a configurable epoch
cadence (``RunSpec.timeseries_every``):

* **counters** are recorded as *deltas* since the previous snapshot
  (the per-epoch rate, which is what trajectory plots want);
* **gauges** are recorded as their current value;
* **distributions** contribute their observation-*count* delta (the
  moments stay end-of-run aggregates in the counter registry).

Storage is columnar -- one list per instrument, plus shared ``epoch``
and ``now_ns`` axes -- and ring-bounded: past ``capacity`` rows the
oldest row is evicted and counted in ``dropped``, so even a very long
run holds a bounded tail of its trajectory.  Instruments that first
appear mid-run get their column zero-backfilled so every column always
spans every recorded row.

The recorder is purely observational: it reads the registry and never
writes simulation state, so a telemetry-enabled run stays bit-identical
to a disabled one outside the serialised ``timeseries`` block (enforced
by ``tests/test_timeseries.py`` in both kernel modes under strict
checks).  :meth:`state_dict`/:meth:`load_state` round-trip the full
recorder -- including the per-counter last-seen values the deltas are
computed against -- so a checkpointed run resumes with a *contiguous*
series: ``run(N)`` and ``run(k) -> save -> load -> run(N-k)`` produce
identical series.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from repro.obs.counters import Counter, CounterRegistry, Distribution

#: Bump when the serialised layout changes.
SCHEMA = 1

Number = Union[int, float]


class MetricsTimeSeries:
    """Columnar ring buffer of per-epoch registry snapshots."""

    def __init__(self, every: int = 1, capacity: int = 4096):
        if every < 1:
            raise ValueError(f"timeseries cadence must be >= 1, got {every}")
        if capacity < 1:
            raise ValueError(
                f"timeseries capacity must be >= 1, got {capacity}"
            )
        self.every = int(every)
        self.capacity = int(capacity)
        #: Shared row axes.
        self._epoch: List[int] = []
        self._now_ns: List[float] = []
        #: One value list per instrument, always ``len(self._epoch)`` long.
        self._columns: Dict[str, List[Number]] = {}
        #: Instrument kind per column (``counter``/``gauge``/``distribution``).
        self._kinds: Dict[str, str] = {}
        #: Last absolute value seen per counter/distribution, for deltas.
        #: Survives ring eviction and checkpoints -- deltas are computed
        #: against the previous *snapshot*, not the previous stored row.
        self._last: Dict[str, Number] = {}
        #: Rows ever recorded / rows evicted by the ring bound.
        self.recorded = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._epoch)

    # -- recording ---------------------------------------------------------

    def due(self, epoch_index: int) -> bool:
        """Is ``epoch_index`` on this recorder's cadence?"""
        return epoch_index % self.every == 0

    def record(
        self, epoch_index: int, now_ns: float, registry: CounterRegistry
    ) -> None:
        """Append one row snapshotting every instrument in ``registry``."""
        if len(self._epoch) == self.capacity:
            self._epoch.pop(0)
            self._now_ns.pop(0)
            for column in self._columns.values():
                column.pop(0)
            self.dropped += 1
        self._epoch.append(int(epoch_index))
        self._now_ns.append(float(now_ns))
        rows = len(self._epoch)
        for name in registry.names():
            inst = registry.get(name)
            if isinstance(inst, Counter):
                kind = "counter"
                value = inst.value
                sample = value - self._last.get(name, 0)
                self._last[name] = value
            elif isinstance(inst, Distribution):
                kind = "distribution"
                count = inst.count
                sample = count - self._last.get(name, 0)
                self._last[name] = count
            else:
                kind = "gauge"
                sample = inst.value
            column = self._columns.get(name)
            if column is None:
                # First sighting mid-run: zero-backfill earlier rows so
                # every column spans the full recorded range.
                column = [0] * (rows - 1)
                self._columns[name] = column
                self._kinds[name] = kind
            column.append(sample)
        self.recorded += 1

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The ``observability.timeseries`` block of a result dict."""
        return {
            "schema": SCHEMA,
            "every": self.every,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "epoch": list(self._epoch),
            "now_ns": list(self._now_ns),
            "kinds": dict(self._kinds),
            "columns": {
                name: list(column) for name, column in self._columns.items()
            },
        }

    # -- checkpoint support ------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Everything :meth:`load_state` needs for a contiguous resume."""
        return dict(self.to_dict(), last=dict(self._last))

    def load_state(self, state: Dict[str, Any]) -> None:
        self.every = int(state["every"])
        self.capacity = int(state["capacity"])
        self.recorded = int(state["recorded"])
        self.dropped = int(state["dropped"])
        self._epoch = [int(e) for e in state["epoch"]]
        self._now_ns = [float(t) for t in state["now_ns"]]
        self._kinds = dict(state["kinds"])
        self._columns = {
            name: list(column) for name, column in state["columns"].items()
        }
        self._last = dict(state["last"])
