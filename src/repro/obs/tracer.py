"""Structured tracing: typed events on a bounded ring buffer.

The simulator's decisions -- why a page was promoted, why the split
estimator fired, when the thresholds moved -- are invisible in
end-of-run aggregates.  :class:`Tracer` records them as typed
:class:`TraceEvent` records stamped with *virtual* simulation time, so a
run can be replayed decision by decision and exported to the Chrome
``trace_event`` format (:mod:`repro.obs.export`).

Cost discipline: tracing is **disabled by default** and every emit site
is guarded (``if tracer.enabled:``) so a disabled tracer costs one
attribute load + branch per site -- no event object, no dict, no
formatting.  With tracing enabled, events land on a fixed-capacity ring
(oldest dropped first, drops counted), so even debug-level tracing of a
long run has bounded memory.

Event taxonomy (category / name):

========== ===================== ==========================================
category    names                 emitted by
========== ===================== ==========================================
sample      sample_fold           ksampled per folded PEBS batch (debug)
sample      buffer_overflow       PEBS sampler when records drop
migrate     promote, demote       kmigrated page movement
migrate     cascade               demotion cascade making room on a full
                                  intermediate tier (N >= 3 machines)
split       split_decision        benefit estimation outcome (eHR/rHR)
split       split, collapse       per huge page split / collapse
threshold   threshold_update      Algorithm 1 adaptation (old -> new)
cooling     cooling               histogram halving pass
period      period_adjust         PEBS sampling-period reprogramming
engine      demand_map,           engine-level faults and region events
            hint_fault
epoch       epoch                 one span per metrics timeline window
fault       sample_drop,          injected faults (``repro.check.faults``):
            sample_dup,           PEBS record loss/replay, fast-tier
            alloc_outage,         admission outages, delayed kmigrated
            delayed_tick, kill    ticks, and the kill-at-epoch abort
========== ===================== ==========================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Severity levels (a subset of the stdlib logging scale).
DEBUG = 10
INFO = 20
WARN = 30

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARN: "warn"}
_NAME_LEVELS = {name: lvl for lvl, name in _LEVEL_NAMES.items()}

#: Known event categories (used for CLI validation / `--events`).
CATEGORIES = (
    "sample", "migrate", "split", "threshold", "cooling", "period",
    "engine", "epoch", "fault",
)


def level_name(level: int) -> str:
    return _LEVEL_NAMES.get(level, str(level))


def parse_level(value) -> int:
    """``"debug"``/``"info"``/``"warn"`` or an int -> numeric level."""
    if isinstance(value, int):
        return value
    try:
        return _NAME_LEVELS[str(value).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown trace level {value!r}; expected one of "
            f"{sorted(_NAME_LEVELS)}"
        ) from None


@dataclass
class TraceEvent:
    """One structured event at a point (or span) of virtual time.

    ``ts_ns`` is simulation time.  ``args`` carries the event's typed
    payload; span events (category ``epoch``) put their length in
    ``args["dur_ns"]``.
    """

    ts_ns: float
    cat: str
    name: str
    level: int = INFO
    args: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-type dict for JSONL export (numpy scalars coerced)."""
        return {
            "ts_ns": float(self.ts_ns),
            "cat": self.cat,
            "name": self.name,
            "level": int(self.level),
            "args": {str(k): _plain(v) for k, v in self.args.items()},
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            ts_ns=float(data["ts_ns"]),
            cat=str(data["cat"]),
            name=str(data["name"]),
            level=int(data.get("level", INFO)),
            args=dict(data.get("args", {})),
        )


def _plain(value: Any) -> Any:
    """Coerce numpy scalars/arrays (and anything exotic) to JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "ndim", 1) == 0:
        return item()
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    return str(value)


class Tracer:
    """Guarded event sink with severity and category filtering.

    The tracer carries its own virtual clock (``now_ns``), advanced by
    the engine once per batch, so deep components (ksampled, the PEBS
    sampler) can stamp events without threading timestamps through every
    call.  Explicit ``ts_ns`` overrides it (used for span starts).
    """

    __slots__ = (
        "enabled", "level", "now_ns", "_categories", "_ring",
        "capacity", "emitted", "dropped",
    )

    def __init__(
        self,
        enabled: bool = False,
        level: int = INFO,
        categories: Optional[Iterable[str]] = None,
        capacity: int = 1 << 16,
    ):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.enabled = bool(enabled)
        self.level = parse_level(level)
        self.now_ns = 0.0
        self._categories: Optional[frozenset] = (
            frozenset(categories) if categories is not None else None
        )
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self.emitted = 0
        self.dropped = 0

    # -- filtering ---------------------------------------------------------

    @property
    def categories(self) -> Optional[Tuple[str, ...]]:
        if self._categories is None:
            return None
        return tuple(sorted(self._categories))

    def enabled_for(self, cat: str, level: int = INFO) -> bool:
        """Cheap guard for call sites that build non-trivial payloads."""
        return (
            self.enabled
            and level >= self.level
            and (self._categories is None or cat in self._categories)
        )

    # -- emission ----------------------------------------------------------

    def emit(
        self,
        cat: str,
        name: str,
        level: int = INFO,
        ts_ns: Optional[float] = None,
        **args,
    ) -> None:
        """Record one event (no-op unless :meth:`enabled_for` passes)."""
        if not self.enabled_for(cat, level):
            return
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(TraceEvent(
            ts_ns=self.now_ns if ts_ns is None else float(ts_ns),
            cat=cat, name=name, level=level, args=args,
        ))
        self.emitted += 1

    # -- access ------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    def counts_by_category(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self._ring:
            out[event.cat] = out.get(event.cat, 0) + 1
        return out

    def stats(self) -> Dict[str, Any]:
        """Summary suitable for ``SimResult.to_dict()`` serialisation."""
        return {
            "enabled": self.enabled,
            "level": level_name(self.level),
            "categories": (
                None if self._categories is None else sorted(self._categories)
            ),
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "buffered": len(self._ring),
        }


#: Shared always-disabled tracer for components constructed without one.
NULL_TRACER = Tracer(enabled=False)


def make_tracer(
    level="info",
    events: Optional[Sequence[str]] = None,
    capacity: int = 1 << 16,
) -> Tracer:
    """Enabled tracer from CLI-ish arguments (level name, category list)."""
    categories = None
    if events:
        unknown = sorted(set(events) - set(CATEGORIES))
        if unknown:
            raise ValueError(
                f"unknown event categories {unknown}; expected a subset of "
                f"{list(CATEGORIES)}"
            )
        categories = tuple(events)
    return Tracer(
        enabled=True, level=parse_level(level), categories=categories,
        capacity=capacity,
    )
