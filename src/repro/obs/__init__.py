"""``repro.obs``: the simulator's structured observability layer.

Three cooperating pieces travel with every simulation:

* :class:`~repro.obs.tracer.Tracer` -- typed, ring-buffered decision
  events (promotions, splits, threshold moves, cooling, period changes,
  fault injections) stamped with virtual time; disabled by default and
  near-free when disabled;
* :class:`~repro.obs.counters.CounterRegistry` -- hierarchical
  counters/gauges/distributions that daemons and policies register
  into, serialised into ``SimResult.to_dict()["observability"]``;
* :class:`~repro.obs.timeseries.MetricsTimeSeries` (optional) -- a
  columnar per-epoch snapshot of the registry (counter deltas + gauge
  values), enabled via ``RunSpec.timeseries_every`` and serialised into
  ``SimResult.to_dict()["observability"]["timeseries"]``.

:class:`Observability` bundles them; the engine creates one per run and
hands it to every component through :class:`~repro.policies.base.PolicyContext`.
Exporters (JSONL, Chrome ``trace_event`` for Perfetto, ASCII) live in
:mod:`repro.obs.export`; live sweep status (heartbeat files, OpenMetrics
text) in :mod:`repro.obs.heartbeat` and :mod:`repro.obs.openmetrics`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.counters import (
    Counter,
    CounterRegistry,
    Distribution,
    Gauge,
    ScopedRegistry,
)
from repro.obs.timeseries import MetricsTimeSeries
from repro.obs.tracer import (
    CATEGORIES,
    DEBUG,
    INFO,
    NULL_TRACER,
    WARN,
    TraceEvent,
    Tracer,
    level_name,
    make_tracer,
    parse_level,
)

__all__ = [
    "CATEGORIES", "Counter", "CounterRegistry", "DEBUG", "Distribution",
    "Gauge", "INFO", "MetricsTimeSeries", "NULL_TRACER", "Observability",
    "ScopedRegistry", "TraceEvent", "Tracer", "WARN", "level_name",
    "make_tracer", "parse_level",
]


class Observability:
    """One run's tracer + counter registry (and their serialisation).

    ``timeseries`` is the optional per-epoch recorder
    (:class:`~repro.obs.timeseries.MetricsTimeSeries`); ``None`` keeps
    the historical two-piece bundle and the historical ``snapshot()``
    layout.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        counters: Optional[CounterRegistry] = None,
        timeseries: Optional[MetricsTimeSeries] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.counters = counters if counters is not None else CounterRegistry()
        self.timeseries = timeseries

    @classmethod
    def traced(cls, level="info", events=None, capacity: int = 1 << 16
               ) -> "Observability":
        """Observability with an *enabled* tracer (CLI convenience)."""
        return cls(tracer=make_tracer(level=level, events=events,
                                      capacity=capacity))

    def snapshot(self) -> Dict[str, Any]:
        """The ``observability`` section of ``SimResult.to_dict()``.

        Counters are the payload; the tracer contributes only its
        summary (events stay in the tracer for exporters), so results
        remain small and cached runs stay comparable to live ones.  The
        ``timeseries`` block appears only when a recorder is attached:
        everything outside it is bit-identical between telemetry-enabled
        and disabled runs.
        """
        data = {
            "counters": self.counters.as_dict(),
            "tracer": self.tracer.stats(),
        }
        if self.timeseries is not None:
            data["timeseries"] = self.timeseries.to_dict()
        return data
