"""``repro.obs``: the simulator's structured observability layer.

Two cooperating pieces travel with every simulation:

* :class:`~repro.obs.tracer.Tracer` -- typed, ring-buffered decision
  events (promotions, splits, threshold moves, cooling, period changes)
  stamped with virtual time; disabled by default and near-free when
  disabled;
* :class:`~repro.obs.counters.CounterRegistry` -- hierarchical
  counters/gauges/distributions that daemons and policies register
  into, serialised into ``SimResult.to_dict()["observability"]``.

:class:`Observability` bundles them; the engine creates one per run and
hands it to every component through :class:`~repro.policies.base.PolicyContext`.
Exporters (JSONL, Chrome ``trace_event`` for Perfetto, ASCII) live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.counters import (
    Counter,
    CounterRegistry,
    Distribution,
    Gauge,
    ScopedRegistry,
)
from repro.obs.tracer import (
    CATEGORIES,
    DEBUG,
    INFO,
    NULL_TRACER,
    WARN,
    TraceEvent,
    Tracer,
    level_name,
    make_tracer,
    parse_level,
)

__all__ = [
    "CATEGORIES", "Counter", "CounterRegistry", "DEBUG", "Distribution",
    "Gauge", "INFO", "NULL_TRACER", "Observability", "ScopedRegistry",
    "TraceEvent", "Tracer", "WARN", "level_name", "make_tracer",
    "parse_level",
]


class Observability:
    """One run's tracer + counter registry (and their serialisation)."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        counters: Optional[CounterRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.counters = counters if counters is not None else CounterRegistry()

    @classmethod
    def traced(cls, level="info", events=None, capacity: int = 1 << 16
               ) -> "Observability":
        """Observability with an *enabled* tracer (CLI convenience)."""
        return cls(tracer=make_tracer(level=level, events=events,
                                      capacity=capacity))

    def snapshot(self) -> Dict[str, Any]:
        """The ``observability`` section of ``SimResult.to_dict()``.

        Counters are the payload; the tracer contributes only its
        summary (events stay in the tracer for exporters), so results
        remain small and cached runs stay comparable to live ones.
        """
        return {
            "counters": self.counters.as_dict(),
            "tracer": self.tracer.stats(),
        }
