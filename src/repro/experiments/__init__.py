"""Experiment regenerators: one module per paper table/figure.

Each module exposes::

    run(scale=None, **kwargs) -> ExperimentResult
    main()                       # prints the paper-shaped output

Run any of them from the command line::

    python -m repro.experiments fig5          # the headline comparison
    python -m repro.experiments table2 fig12  # several in sequence
    python -m repro.experiments --list

The mapping to the paper is recorded in DESIGN.md §3 and the measured
outcomes in EXPERIMENTS.md.
"""

from repro.experiments.common import ExperimentResult, EXPERIMENT_REGISTRY

__all__ = ["ExperimentResult", "EXPERIMENT_REGISTRY"]
