"""Fig. 8: detailed comparison to HeMem on HeMem's best terms.

Two courtesies the paper extends to HeMem: (1) 16 application threads,
leaving spare cores so HeMem's sampling thread causes no contention;
(2) HeMem+ -- HeMem configured with the same fast tier size as MEMTIS,
i.e. it *additionally* consumes its over-allocation on top (we grow the
machine's DRAM by the measured over-allocation for the HeMem+ run).

Expected shape: MEMTIS still wins; HeMem+'s extra DRAM does not close
the gap because static thresholds waste it on arbitrary cold pages.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ALL_WORKLOADS, ExperimentResult
from repro.policies.registry import make_policy
from repro.policies.static import AllCapacityPolicy
from repro.sim.engine import Simulation
from repro.sim.machine import DEFAULT_SCALE, MachineSpec, ScaleSpec
from repro.workloads.registry import make_workload

RATIO = "1:2"
THREADS = 16


def _machine(workload, extra_fast: int = 0) -> MachineSpec:
    base = MachineSpec.from_ratio(workload.total_bytes, ratio=RATIO)
    return MachineSpec(
        fast_bytes=base.fast_bytes + extra_fast,
        capacity_bytes=base.capacity_bytes,
        capacity_kind=base.capacity_kind,
        cores=base.cores,
        app_threads=THREADS,
    )


def run(scale: Optional[ScaleSpec] = None, workloads=None, **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    rows = []
    data = {}
    for name in workloads:
        workload = make_workload(name, scale)
        machine = _machine(workload)
        baseline = Simulation(
            make_workload(name, scale), AllCapacityPolicy(), machine.collapse_to_slowest()
        ).run()

        hemem_result = Simulation(
            make_workload(name, scale), make_policy("hemem"), machine
        ).run()
        overalloc = int(hemem_result.policy_stats.get("overallocated_bytes", 0))

        hemem_plus = Simulation(
            make_workload(name, scale), make_policy("hemem"),
            _machine(workload, extra_fast=overalloc),
        ).run()
        memtis_result = Simulation(
            make_workload(name, scale), make_policy("memtis"), machine
        ).run()

        cell = {
            "hemem": baseline.runtime_ns / hemem_result.runtime_ns,
            "hemem+": baseline.runtime_ns / hemem_plus.runtime_ns,
            "memtis": baseline.runtime_ns / memtis_result.runtime_ns,
        }
        gap = (cell["memtis"] / max(cell["hemem"], cell["hemem+"]) - 1) * 100
        rows.append([name, cell["hemem"], cell["hemem+"], cell["memtis"],
                     f"{gap:+.1f}%"])
        data[name] = dict(cell, overalloc_bytes=overalloc)
    text = format_table(
        ["Benchmark", "HeMem", "HeMem+", "MEMTIS", "MEMTIS vs best HeMem"],
        rows,
        title=f"Fig. 8: HeMem comparison ({THREADS} threads, {RATIO})",
    )
    return ExperimentResult("fig8", "Detailed comparison to HeMem", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
