"""Fig. 9: MEMTIS's identified hot/warm/cold sets over time.

Four benchmarks x two tiering settings (1:2 and 1:8); the claim to
verify is that "the identified hot set size is very close to the fast
tier size" -- MEMTIS sizes its hot set to DRAM through the histogram,
something static-threshold systems cannot do (contrast Fig. 2).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii import timeline_chart
from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

WORKLOADS = ["pagerank", "xsbench", "liblinear", "603.bwaves"]
RATIOS = ["1:2", "1:8"]


def run(scale: Optional[ScaleSpec] = None, workloads=None, ratios=None,
        **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or WORKLOADS
    ratios = ratios or RATIOS
    charts = []
    rows = []
    data = {}
    for ratio in ratios:
        for name in workloads:
            result = run_experiment(name, "memtis", ratio=ratio, scale=scale)
            timeline = result.metrics.timeline
            times = [p.now_ns / 1e9 for p in timeline]
            hot = [p.policy_stats.get("hot_bytes", 0) / 1e6 for p in timeline]
            warm = [p.policy_stats.get("warm_bytes", 0) / 1e6 for p in timeline]
            fast_mb = result.machine.fast_bytes / 1e6
            charts.append(
                timeline_chart(
                    times,
                    {"hot (MB)": hot, "warm (MB)": warm,
                     "dram (MB)": [fast_mb] * len(times)},
                    title=f"Fig. 9 [{name} {ratio}] hot/warm vs DRAM {fast_mb:.1f}MB",
                )
            )
            # Steady-state closeness of hot+warm-in-DRAM to the fast tier:
            # the paper's "very close to the fast tier size" claim.
            tail = hot[len(hot) // 2 :] or [0.0]
            mean_hot = sum(tail) / len(tail)
            rows.append([name, ratio, f"{mean_hot:.1f}MB", f"{fast_mb:.1f}MB",
                         f"{mean_hot / fast_mb * 100:.0f}%"])
            data[f"{name}|{ratio}"] = {
                "times_s": times, "hot_mb": hot, "warm_mb": warm,
                "fast_mb": fast_mb, "steady_hot_mb": mean_hot,
            }
    table = format_table(
        ["Benchmark", "Ratio", "Steady hot set", "DRAM", "Hot/DRAM"],
        rows,
        title="Fig. 9: identified hot set vs fast tier size",
    )
    return ExperimentResult(
        "fig9", "MEMTIS hot/warm/cold timeline",
        table + "\n\n" + "\n\n".join(charts), data=data,
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
