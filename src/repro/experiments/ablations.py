"""Extension: ablation study of MEMTIS's design choices.

Beyond the paper's Fig. 10 (warm set / split), this sweeps the remaining
design decisions DESIGN.md calls out:

* ``no-dynamic-period`` -- fixed PEBS periods instead of the 3%-capped
  controller (§4.1.1);
* ``no-compensation``  -- drop the ``H_i = C_i * nr_subpages`` base-page
  hotness compensation (§4.1.2), so base pages compete with huge pages
  on raw counts;
* ``no-seeding``       -- new pages start at hotness 0 instead of the
  current hot threshold (§4.2.1), exposing them to immediate demotion;
* ``no-warm`` / ``no-split`` -- the Fig. 10 switches, for completeness.

Reported: performance normalised to full MEMTIS (1.0 = no effect; below
1.0 = the ablated mechanism was earning its keep on that workload).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

VARIANTS = {
    "full": {},
    "no-dynamic-period": {"dynamic_period": False},
    "no-compensation": {"compensate_base_hotness": False},
    "no-seeding": {"seed_new_pages": False},
    "no-warm": {"enable_warm_set": False},
    "no-split": {"enable_split": False},
}

#: Workloads chosen to stress each mechanism: bwaves (seeding of fresh
#: allocations), silo (split + compensation), xsbench (warm set),
#: 654.roms (dynamic period -- its sample volume drives the controller).
WORKLOADS = ["xsbench", "silo", "603.bwaves", "654.roms"]
RATIO = "1:8"


def run(scale: Optional[ScaleSpec] = None, workloads=None, variants=None,
        **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or WORKLOADS
    variants = variants or list(VARIANTS)
    rows = []
    data = {}
    for name in workloads:
        runtimes = {}
        for variant in variants:
            result = run_experiment(
                name, "memtis", ratio=RATIO, scale=scale,
                policy_kwargs=VARIANTS[variant],
            )
            runtimes[variant] = result.runtime_ns
        full = runtimes.get("full") or list(runtimes.values())[0]
        normalized = {v: full / rt for v, rt in runtimes.items()}
        rows.append([name] + [normalized[v] for v in variants])
        data[name] = normalized
    text = format_table(
        ["Benchmark"] + list(variants),
        rows,
        title=f"Ablations ({RATIO}; normalised to full MEMTIS = 1.0)",
    )
    return ExperimentResult("ablations", "MEMTIS design-choice ablations",
                            text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
