"""Fig. 14: CXL memory as the capacity tier -- MEMTIS vs TPP.

Same grid as Fig. 5 but the capacity tier is emulated CXL (177 ns load,
§6.4) and the comparison is against TPP, the system designed for
CXL-attached memory.  Expected shape: the smaller latency gap shrinks
everyone's headroom, but MEMTIS still beats TPP across the board
(paper: up to 32.8%-102.9% per benchmark).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ALL_WORKLOADS, BaselineCache, ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

POLICIES = ["tpp", "memtis"]
RATIOS = ["1:2", "1:8", "1:16"]


def run(scale: Optional[ScaleSpec] = None, workloads=None, ratios=None,
        **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    ratios = ratios or RATIOS
    baselines = BaselineCache(scale, capacity_kind="cxl")
    rows = []
    data = {}
    for name in workloads:
        row = [name]
        for ratio in ratios:
            baseline = baselines.get(name, ratio)
            cell = {}
            for policy in POLICIES:
                result = run_experiment(
                    name, policy, ratio=ratio, capacity_kind="cxl", scale=scale
                )
                cell[policy] = baseline.runtime_ns / result.runtime_ns
            gain = (cell["memtis"] / cell["tpp"] - 1) * 100
            row.extend([cell["tpp"], cell["memtis"], f"{gain:+.1f}%"])
            data[f"{name}|{ratio}"] = dict(cell, gain_pct=gain)
        rows.append(row)
    headers = ["Benchmark"]
    for ratio in ratios:
        headers.extend([f"TPP {ratio}", f"MEMTIS {ratio}", f"gain {ratio}"])
    text = format_table(
        headers, rows,
        title="Fig. 14: emulated CXL capacity tier (normalised to all-CXL+THP)",
    )
    return ExperimentResult("fig14", "CXL capacity tier", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
