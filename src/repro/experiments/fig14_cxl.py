"""Fig. 14: CXL memory as the capacity tier -- MEMTIS vs TPP.

Same grid as Fig. 5 but the capacity tier is emulated CXL (177 ns load,
§6.4) and the comparison is against TPP, the system designed for
CXL-attached memory.  Expected shape: the smaller latency gap shrinks
everyone's headroom, but MEMTIS still beats TPP across the board
(paper: up to 32.8%-102.9% per benchmark).

``run_three_tier`` extends the figure beyond the paper: DRAM and CXL
and NVM *coexist* as an ordered 3-tier hierarchy (the
``dram-cxl-nvm`` machine preset) instead of swapping which technology
plays the capacity tier.  Demotions out of DRAM land on CXL; when CXL
fills, the migration engine's cross-tier demotion cascade pushes its
coldest pages onward to NVM, and the per-run cascade counters report
how often that happened.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ALL_WORKLOADS, BaselineCache, ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import RunSpec, run_experiment

POLICIES = ["tpp", "memtis"]
RATIOS = ["1:2", "1:8", "1:16"]

#: Small default grid for the 3-tier variant so it runs in tier-1 time.
THREE_TIER_WORKLOADS = ["silo", "xsbench"]
THREE_TIER_PRESET = "dram-cxl-nvm"


def run(scale: Optional[ScaleSpec] = None, workloads=None, ratios=None,
        **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    ratios = ratios or RATIOS
    baselines = BaselineCache(scale, capacity_kind="cxl")
    rows = []
    data = {}
    for name in workloads:
        row = [name]
        for ratio in ratios:
            baseline = baselines.get(name, ratio)
            cell = {}
            for policy in POLICIES:
                result = run_experiment(
                    name, policy, ratio=ratio, capacity_kind="cxl", scale=scale
                )
                cell[policy] = baseline.runtime_ns / result.runtime_ns
            gain = (cell["memtis"] / cell["tpp"] - 1) * 100
            row.extend([cell["tpp"], cell["memtis"], f"{gain:+.1f}%"])
            data[f"{name}|{ratio}"] = dict(cell, gain_pct=gain)
        rows.append(row)
    headers = ["Benchmark"]
    for ratio in ratios:
        headers.extend([f"TPP {ratio}", f"MEMTIS {ratio}", f"gain {ratio}"])
    text = format_table(
        headers, rows,
        title="Fig. 14: emulated CXL capacity tier (normalised to all-CXL+THP)",
    )
    return ExperimentResult("fig14", "CXL capacity tier", text, data=data)


def run_three_tier(scale: Optional[ScaleSpec] = None, workloads=None,
                   ratio: str = "1:8", **_kwargs) -> ExperimentResult:
    """3-tier DRAM/CXL/NVM variant exercising the demotion cascade.

    Normalisation baseline: the same preset machine collapsed to its
    slowest tier (all-NVM with THP), matching the paper's convention.
    """
    scale = scale or DEFAULT_SCALE
    workloads = workloads or THREE_TIER_WORKLOADS
    rows = []
    data = {}
    for name in workloads:
        baseline = RunSpec(
            name, "all-capacity", ratio=ratio, scale=scale,
            machine_preset=THREE_TIER_PRESET,
            machine_variant="all-capacity",
        ).run()
        row = [name]
        cell = {}
        for policy in POLICIES:
            result = RunSpec(
                name, policy, ratio=ratio, scale=scale,
                machine_preset=THREE_TIER_PRESET,
            ).run()
            cell[policy] = baseline.runtime_ns / result.runtime_ns
            if policy == "memtis":
                cell["cascade_pages"] = result.migration.cascade_pages
                cell["cascade_bytes"] = result.migration.cascade_bytes
        gain = (cell["memtis"] / cell["tpp"] - 1) * 100
        row.extend([cell["tpp"], cell["memtis"], f"{gain:+.1f}%",
                    cell["cascade_pages"]])
        data[name] = dict(cell, gain_pct=gain)
        rows.append(row)
    headers = ["Benchmark", f"TPP {ratio}", f"MEMTIS {ratio}",
               f"gain {ratio}", "cascades"]
    text = format_table(
        headers, rows,
        title="Fig. 14 (3-tier): DRAM/CXL/NVM hierarchy "
              "(normalised to all-NVM+THP)",
    )
    return ExperimentResult("fig14-3tier", "3-tier DRAM/CXL/NVM", text,
                            data=data)


def main() -> None:
    run().print()
    run_three_tier().print()


if __name__ == "__main__":
    main()
