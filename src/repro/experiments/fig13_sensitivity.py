"""Fig. 13: sensitivity to the adaptation and cooling intervals (2:1).

Both intervals are swept from 0.1x to 10x of the default; each point is
normalised to the default-setting performance of the same benchmark.
The paper's finding: robust insensitivity except for the extreme 10x
adaptation interval, where the hot set identified over the long window
overflows small fast tiers.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.core.config import MemtisConfig
from repro.experiments.common import ALL_WORKLOADS, ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, MachineSpec, ScaleSpec
from repro.sim.runner import run_experiment
from repro.workloads.registry import make_workload

MULTIPLIERS = [0.1, 0.5, 1.0, 2.0, 10.0]
RATIO = "2:1"


def _default_intervals(workload_name: str, scale: ScaleSpec):
    workload = make_workload(workload_name, scale)
    machine = MachineSpec.from_ratio(workload.total_bytes, ratio=RATIO)
    config = MemtisConfig().resolved(
        machine.fast_bytes, machine.fast_bytes + machine.capacity_bytes
    )
    return config.adaptation_interval_samples, config.cooling_interval_samples


def run(scale: Optional[ScaleSpec] = None, workloads=None, multipliers=None,
        **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    multipliers = multipliers or MULTIPLIERS

    sections = []
    data = {}
    for sweep in ("adaptation", "cooling"):
        rows = []
        for name in workloads:
            adapt_default, cool_default = _default_intervals(name, scale)
            runtimes = {}
            for mult in multipliers:
                overrides = {}
                if sweep == "adaptation":
                    overrides["adaptation_interval_samples"] = max(
                        64, int(adapt_default * mult)
                    )
                else:
                    overrides["cooling_interval_samples"] = max(
                        128, int(cool_default * mult)
                    )
                result = run_experiment(
                    name, "memtis", ratio=RATIO, scale=scale,
                    policy_kwargs=overrides,
                )
                runtimes[mult] = result.runtime_ns
            default_runtime = runtimes.get(1.0) or list(runtimes.values())[0]
            normalized = {m: default_runtime / rt for m, rt in runtimes.items()}
            rows.append([name] + [normalized[m] for m in multipliers])
            data[f"{sweep}|{name}"] = normalized
        sections.append(
            format_table(
                ["Benchmark"] + [f"{m}x" for m in multipliers],
                rows,
                title=f"Fig. 13: {sweep}-interval sensitivity ({RATIO}, "
                      "normalised to 1x)",
            )
        )
    return ExperimentResult(
        "fig13", "Interval sensitivity", "\n\n".join(sections), data=data,
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
