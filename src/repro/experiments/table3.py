"""Table 3: HeMem's over-allocation sizes.

HeMem pins small allocations in DRAM regardless of hotness; the paper
measures how much fast-tier memory those allocations consume for each
benchmark.  We run each workload under HeMem and read the policy's
over-allocation counter, reporting it next to the paper's numbers
(scaled to MB of the simulated footprint).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ALL_WORKLOADS, ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

#: Paper Table 3 (MB).
PAPER_OVERALLOC_MB = {
    "graph500": 60,
    "pagerank": 500,
    "xsbench": 420,
    "liblinear": 90,
    "silo": 1400,
    "btree": 9800,
    "603.bwaves": 1900,
    "654.roms": 900,
}


def run(scale: Optional[ScaleSpec] = None, workloads=None, **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    headers = ["Benchmark", "Paper over-alloc (MB)", "Sim over-alloc (MB)",
               "Sim share of RSS"]
    rows = []
    data = {}
    for name in workloads:
        result = run_experiment(name, "hemem", ratio="1:2", scale=scale)
        over = result.policy_stats.get("overallocated_bytes", 0.0)
        share = over / result.final_rss_bytes if result.final_rss_bytes else 0.0
        rows.append(
            [name, PAPER_OVERALLOC_MB[name], over / 1e6, f"{share * 100:.1f}%"]
        )
        data[name] = {"paper_mb": PAPER_OVERALLOC_MB[name], "sim_bytes": over}
    text = format_table(headers, rows, title="Table 3: HeMem over-allocation")
    return ExperimentResult("table3", "HeMem over-allocation sizes", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
