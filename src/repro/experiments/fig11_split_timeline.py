"""Fig. 11: Silo and Btree throughput over time, with/without split.

Runs MEMTIS, MEMTIS-NS (no split) and Tiering-0.8 (the second-best
baseline on these workloads in the paper) at 1:8 and plots windowed
throughput over time.  The paper's shape: MEMTIS dips briefly when the
split starts, then overtakes MEMTIS-NS; for Btree the split also
reclaims bloat (RSS 38.3 -> 27.2 GB at 1:8), which we check through the
simulated RSS drop.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii import timeline_chart
from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

WORKLOADS = ["silo", "btree"]
POLICIES = ["memtis", "memtis-ns", "tiering-0.8"]
RATIO = "1:8"


def run(scale: Optional[ScaleSpec] = None, workloads=None, **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or WORKLOADS
    charts = []
    rows = []
    data = {}
    for name in workloads:
        series = {}
        rss = {}
        for policy in POLICIES:
            result = run_experiment(name, policy, ratio=RATIO, scale=scale)
            timeline = result.metrics.timeline
            series[policy] = (
                [p.now_ns / 1e9 for p in timeline],
                [p.throughput_mops for p in timeline],
            )
            rss[policy] = {
                "start": timeline[0].rss_bytes if timeline else 0,
                "end": result.final_rss_bytes,
                "splits": result.policy_stats.get("splits", 0.0),
                "throughput": result.throughput_maps,
            }
        times = series["memtis"][0]
        charts.append(
            timeline_chart(
                times,
                {p: series[p][1][: len(times)] for p in POLICIES},
                title=f"Fig. 11 [{name} {RATIO}] throughput (M accesses/s) over time",
            )
        )
        gain = (
            rss["memtis"]["throughput"] / rss["memtis-ns"]["throughput"] - 1
        ) * 100
        rss_drop = (
            (rss["memtis"]["start"] - rss["memtis"]["end"])
            / max(1, rss["memtis"]["start"]) * 100
        )
        rows.append(
            [name, f"{gain:+.1f}%", rss["memtis"]["splits"],
             f"{rss['memtis']['start'] / 1e6:.1f}MB",
             f"{rss['memtis']['end'] / 1e6:.1f}MB", f"{rss_drop:.1f}%"]
        )
        data[name] = {"series": {p: series[p][1] for p in POLICIES},
                      "times_s": times, "rss": rss, "split_gain_pct": gain}
    table = format_table(
        ["Benchmark", "split gain (vs NS)", "splits", "RSS start", "RSS end",
         "RSS drop"],
        rows,
        title=f"Fig. 11: impact of the huge-page split ({RATIO})",
    )
    return ExperimentResult(
        "fig11", "Split impact over time",
        table + "\n\n" + "\n\n".join(charts), data=data,
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
