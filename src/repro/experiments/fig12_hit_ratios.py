"""Fig. 12: fast-tier hit ratios -- eHR vs rHR vs rHR-NS (1:8).

* eHR: MEMTIS's estimated hit ratio if only base pages existed (from
  the emulated base-page histogram);
* rHR: the measured fast-tier hit ratio with splitting enabled;
* rHR-NS: the measured hit ratio of MEMTIS-NS (no split).

Paper shape: Silo and Btree show a large eHR vs rHR-NS gap that the
split mostly closes; Graph500/PageRank can have eHR <= rHR (no skew,
nothing to split); 603.bwaves stays low regardless (short-lived data
churn).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ALL_WORKLOADS, ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

RATIO = "1:8"


def run(scale: Optional[ScaleSpec] = None, workloads=None, **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    rows = []
    data = {}
    for name in workloads:
        with_split = run_experiment(name, "memtis", ratio=RATIO, scale=scale)
        no_split = run_experiment(name, "memtis-ns", ratio=RATIO, scale=scale)
        ehr = with_split.policy_stats.get("ehr", 0.0)
        rhr = with_split.fast_hit_ratio
        rhr_ns = no_split.fast_hit_ratio
        rows.append(
            [name, f"{ehr * 100:.1f}%", f"{rhr * 100:.1f}%",
             f"{rhr_ns * 100:.1f}%", f"{(rhr - rhr_ns) * 100:+.1f}pp",
             with_split.policy_stats.get("splits", 0.0)]
        )
        data[name] = {"ehr": ehr, "rhr": rhr, "rhr_ns": rhr_ns,
                      "splits": with_split.policy_stats.get("splits", 0.0)}
    text = format_table(
        ["Benchmark", "eHR", "rHR", "rHR-NS", "split gain", "splits"],
        rows,
        title=f"Fig. 12: fast tier hit ratios ({RATIO})",
    )
    return ExperimentResult("fig12", "Hit ratio decomposition", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
