"""Shared experiment scaffolding: results, grids, baseline caching."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.sim import cache as result_cache
from repro.sim.engine import json_safe
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import RunSpec, normalized_performance, run_baseline
from repro.sim.sweep import run_sweep, raise_failures
from repro.workloads.registry import PAPER_ORDER

#: Quick scale for tests / smoke runs of the experiment modules.
SMOKE_SCALE = ScaleSpec(
    bytes_per_paper_gb=1 * 1024 * 1024,
    accesses_per_paper_gb=30_000,
    min_bytes=48 * 1024 * 1024,
    min_accesses_per_page=60,
)


@dataclass
class ExperimentResult:
    """Output of one experiment regeneration."""

    experiment_id: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)

    def print(self) -> None:
        print(f"\n### {self.experiment_id}: {self.title}\n")
        print(self.text)

    def save(self, path: str) -> None:
        """Write the rendered text and the raw data as JSON.

        ``data`` may contain numpy scalars/arrays and whole
        :class:`~repro.sim.engine.SimResult` objects; everything is
        converted through :func:`repro.sim.engine.json_safe`.
        """
        import json

        with open(path, "w") as fh:
            json.dump(
                {
                    "experiment_id": self.experiment_id,
                    "title": self.title,
                    "text": self.text,
                    "data": json_safe(self.data),
                },
                fh, indent=2,
            )


class BaselineCache:
    """Caches the all-capacity baselines shared across policies."""

    def __init__(self, scale: ScaleSpec, capacity_kind: str = "nvm", seed: int = 42):
        self.scale = scale
        self.capacity_kind = capacity_kind
        self.seed = seed
        self._cache: Dict[Tuple[str, str], object] = {}

    def get(self, workload: str, ratio: str):
        key = (workload, ratio)
        if key not in self._cache:
            self._cache[key] = run_baseline(
                workload, ratio=ratio, capacity_kind=self.capacity_kind,
                scale=self.scale, seed=self.seed,
            )
        return self._cache[key]


def run_grid(
    workloads: Sequence[str],
    policies: Sequence[str],
    ratios: Sequence[str],
    scale: Optional[ScaleSpec] = None,
    capacity_kind: str = "nvm",
    seed: int = 42,
    policy_kwargs: Optional[Dict[str, dict]] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
    cache=result_cache.DEFAULT,
    strict: bool = True,
) -> Dict[Tuple[str, str, str], Dict[str, object]]:
    """Run every (workload, policy, ratio) combo, normalised per cell.

    Cells (plus the one shared all-capacity baseline per
    (workload, ratio)) are executed through :func:`repro.sim.sweep.run_sweep`:
    deduplicated, served from the persistent result cache when possible,
    and fanned out over ``jobs`` worker processes (default: the
    ``--jobs``/``REPRO_JOBS`` setting, else serial).  ``progress``
    receives one human-readable message per completed cell.

    Returns ``{(workload, policy, ratio): {"normalized": float,
    "result": SimResult, "baseline": SimResult}}``.  With
    ``strict=False`` a failed cell yields ``{"error": str}`` instead of
    aborting the grid.
    """
    scale = scale or DEFAULT_SCALE
    cells: Dict[Tuple[str, str, str], RunSpec] = {}
    for workload in workloads:
        for ratio in ratios:
            for policy in policies:
                cells[(workload, policy, ratio)] = RunSpec(
                    workload, policy, ratio=ratio,
                    capacity_kind=capacity_kind, scale=scale, seed=seed,
                    policy_kwargs=(policy_kwargs or {}).get(policy, {}),
                )
    # Baselines first so serial execution warms them before the cells
    # that normalise against them; dedup in run_sweep makes each unique
    # baseline run exactly once however many policies share it.
    baselines = [spec.baseline_spec() for spec in cells.values()]
    outcomes = run_sweep(
        list(dict.fromkeys(baselines)) + list(cells.values()),
        jobs=jobs, cache=cache,
        progress=(lambda event: progress(event.message)) if progress else None,
    )
    if strict:
        raise_failures(outcomes)

    out: Dict[Tuple[str, str, str], Dict[str, object]] = {}
    for key, spec in cells.items():
        cell = outcomes[spec]
        baseline = outcomes[spec.baseline_spec()]
        if not (cell.ok and baseline.ok):
            out[key] = {"error": cell.error or baseline.error}
            continue
        out[key] = {
            "normalized": normalized_performance(cell.result, baseline.result),
            "result": cell.result,
            "baseline": baseline.result,
        }
    return out


def geomean(values: Sequence[float]) -> float:
    import numpy as np

    arr = np.asarray(values, dtype=float)
    if len(arr) == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))


#: experiment id -> module path (each defines run()/main()).
EXPERIMENT_REGISTRY: Dict[str, str] = {
    "table1": "repro.experiments.table1",
    "fig1": "repro.experiments.fig1_damon",
    "fig2": "repro.experiments.fig2_hemem_hotset",
    "fig3": "repro.experiments.fig3_utilization",
    "table2": "repro.experiments.table2",
    "table3": "repro.experiments.table3",
    "fig5": "repro.experiments.fig5_main",
    "fig6": "repro.experiments.fig6_scalability",
    "fig7": "repro.experiments.fig7_2to1",
    "fig8": "repro.experiments.fig8_hemem_detail",
    "fig9": "repro.experiments.fig9_hotset_timeline",
    "fig10": "repro.experiments.fig10_warm_split_ablation",
    "fig11": "repro.experiments.fig11_split_timeline",
    "fig12": "repro.experiments.fig12_hit_ratios",
    "fig13": "repro.experiments.fig13_sensitivity",
    "fig14": "repro.experiments.fig14_cxl",
    "overheads": "repro.experiments.overheads",
    "ablations": "repro.experiments.ablations",
    "tmts": "repro.experiments.tmts_comparison",
    "colocation": "repro.experiments.colocation",
    "headtohead": "repro.experiments.headtohead",
}


def load_experiment(experiment_id: str):
    """Import the module implementing ``experiment_id``."""
    try:
        path = EXPERIMENT_REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENT_REGISTRY)}"
        ) from None
    return importlib.import_module(path)


ALL_WORKLOADS = list(PAPER_ORDER)
