"""Fig. 10: ablation of the warm set and the huge-page split.

Three MEMTIS variants per benchmark (1:8, NVM):

* vanilla -- no split, no T_warm protection;
* w/ split -- split enabled, still no T_warm;
* w/ split + T_warm -- the full system.

Reported per variant: normalised performance and migration traffic
normalised to vanilla.  The paper's shape: the warm set cuts traffic by
2.7-64.8%, the split adds performance on the skewed workloads
(Silo/Btree), and 603.bwaves is the known exception where the warm set
hurts (short-lived allocations wait for free space).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ALL_WORKLOADS, BaselineCache, ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

VARIANTS = {
    "vanilla": {"enable_split": False, "enable_warm_set": False},
    "split": {"enable_split": True, "enable_warm_set": False},
    "split+warm": {"enable_split": True, "enable_warm_set": True},
}
RATIO = "1:8"


def run(scale: Optional[ScaleSpec] = None, workloads=None, **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    baselines = BaselineCache(scale)
    rows = []
    data = {}
    for name in workloads:
        baseline = baselines.get(name, RATIO)
        cell = {}
        for variant, overrides in VARIANTS.items():
            result = run_experiment(
                name, "memtis", ratio=RATIO, scale=scale, policy_kwargs=overrides
            )
            cell[variant] = {
                "normalized": baseline.runtime_ns / result.runtime_ns,
                "traffic": result.migration.traffic_bytes,
            }
        vanilla_traffic = max(1, cell["vanilla"]["traffic"])
        rows.append(
            [
                name,
                cell["vanilla"]["normalized"],
                cell["split"]["normalized"],
                cell["split+warm"]["normalized"],
                1.0,
                cell["split"]["traffic"] / vanilla_traffic,
                cell["split+warm"]["traffic"] / vanilla_traffic,
            ]
        )
        data[name] = cell
    text = format_table(
        ["Benchmark", "perf vanilla", "perf +split", "perf +split+warm",
         "traffic vanilla", "traffic +split", "traffic +split+warm"],
        rows,
        title=f"Fig. 10: warm-set and split ablation ({RATIO}; traffic norm. to vanilla)",
    )
    return ExperimentResult("fig10", "Warm set / split ablation", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
