"""Table 2: benchmark characteristics (RSS, huge page ratio).

Reports the paper's values alongside the *measured* scaled values: each
workload is run briefly under the static all-capacity policy and its
simulated RSS and THP ratio are read back from the address space.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ALL_WORKLOADS, ExperimentResult
from repro.policies.static import AllCapacityPolicy
from repro.sim.engine import Simulation
from repro.sim.machine import DEFAULT_SCALE, MachineSpec, ScaleSpec
from repro.workloads.registry import WORKLOAD_REGISTRY, make_workload


def run(scale: Optional[ScaleSpec] = None, workloads=None, **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    headers = [
        "Benchmark",
        "Paper RSS (GB)",
        "Paper RHP",
        "Sim RSS (MB)",
        "Sim RHP",
        "Description",
    ]
    rows = []
    data = {}
    for name in workloads:
        cls = WORKLOAD_REGISTRY[name]
        workload = make_workload(name, scale)
        machine = MachineSpec.from_ratio(workload.total_bytes, ratio="1:2")
        sim = Simulation(workload, AllCapacityPolicy(), machine.collapse_to_slowest())
        result = sim.run()
        rows.append(
            [
                name,
                cls.paper_rss_gb,
                f"{cls.paper_rhp * 100:.1f}%",
                result.final_rss_bytes / 1e6,
                f"{result.huge_page_ratio * 100:.1f}%",
                cls.description,
            ]
        )
        data[name] = {
            "paper_rss_gb": cls.paper_rss_gb,
            "paper_rhp": cls.paper_rhp,
            "sim_rss_bytes": result.final_rss_bytes,
            "sim_rhp": result.huge_page_ratio,
        }
    text = format_table(headers, rows, title="Table 2: benchmark characteristics")
    return ExperimentResult("table2", "Benchmark characteristics", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
