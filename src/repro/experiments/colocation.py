"""Extension: co-located applications sharing one tier pair.

The paper evaluates one application at a time; warehouse-scale machines
(§8's TMTS context) run many.  This experiment co-locates a
subpage-skewed workload (Silo) with a contiguous-hot one (Liblinear)
over a shared DRAM pool and compares policies: the interesting question
is whether MEMTIS's global histogram still sizes one *combined* hot set
correctly when two applications with different skew shapes compete.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult
from repro.policies.registry import make_policy
from repro.policies.static import AllCapacityPolicy
from repro.sim.engine import Simulation
from repro.sim.machine import DEFAULT_SCALE, MachineSpec, ScaleSpec
from repro.workloads.mix import MixWorkload
from repro.workloads.registry import make_workload

PAIRS = [("silo", "liblinear"), ("xsbench", "btree")]
POLICIES = ["tpp", "hemem", "memtis"]
RATIO = "1:8"


def _mix(pair, scale):
    return MixWorkload([make_workload(name, scale) for name in pair])


def run(scale: Optional[ScaleSpec] = None, pairs=None, policies=None,
        **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    pairs = pairs or PAIRS
    policies = policies or POLICIES
    rows = []
    data = {}
    for pair in pairs:
        label = "+".join(pair)
        machine = MachineSpec.from_ratio(_mix(pair, scale).total_bytes,
                                         ratio=RATIO)
        baseline = Simulation(
            _mix(pair, scale), AllCapacityPolicy(), machine.collapse_to_slowest()
        ).run()
        cell = {}
        for policy in policies:
            result = Simulation(_mix(pair, scale), make_policy(policy),
                                machine).run()
            cell[policy] = {
                "normalized": baseline.runtime_ns / result.runtime_ns,
                "hit": result.fast_hit_ratio,
                "splits": result.policy_stats.get("splits", 0.0),
            }
        rows.append(
            [label]
            + [cell[p]["normalized"] for p in policies]
            + [f"{cell['memtis']['hit'] * 100:.1f}%",
               cell["memtis"]["splits"]]
        )
        data[label] = cell
    text = format_table(
        ["Co-located pair"] + list(policies)
        + ["memtis hit ratio", "memtis splits"],
        rows,
        title=f"Co-location ({RATIO}, shared tiers; all-NVM baseline = 1.0)",
    )
    return ExperimentResult("colocation", "Co-located applications", text,
                            data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
