"""Head-to-head: every registered policy across workloads and machines.

Beyond the paper: Fig. 5 compares MEMTIS against its six contemporaries,
but the registry has since grown a related-work zoo (TierBPF, Nomad,
HybridTier, ARMS -- see PAPERS.md).  This experiment races the *entire*
registry:

1. a fig5-style normalised-performance grid over >= 4 benchmarks on the
   two-tier DRAM/NVM machine at two tiering ratios;
2. the same field on the 3-tier ``dram-cxl-nvm`` preset, where demotion
   cascades and intermediate-tier placement separate designs that
   looked alike on two tiers;
3. a **phase-flip** scenario (the ``phaseflip`` workload): the hot set
   jumps to a disjoint range mid-run, so accumulated-counter policies
   serve the *old* phase from DRAM while adaptive ones (ARMS's drift
   reset) re-converge -- the adaptivity column the paper never had.

Every cell is normalised against the matching all-capacity-with-THP
baseline (the paper's 1.0 convention), so numbers are comparable across
sections.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii import bar_chart
from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult, geomean, run_grid
from repro.policies.registry import policy_names
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import RunSpec

#: >= 4 benchmarks spanning the paper's spectrum: pointer chasing
#: (graph500), skewed OLTP (silo), flat random (xsbench), index reads
#: (btree).
DEFAULT_WORKLOADS = ["graph500", "silo", "xsbench", "btree"]
RATIOS = ["1:2", "1:8"]
THREE_TIER_PRESET = "dram-cxl-nvm"
THREE_TIER_RATIO = "1:8"
#: Phase-flip runs at 1:2 so DRAM holds roughly one hot window: the
#: flip is survivable for an adaptive policy, fatal for a stale one.
PHASEFLIP_RATIO = "1:2"


def _policy_table(grid, workloads, policies, ratio, title):
    """Rows = policies (wide zoo), columns = workloads + geomean."""
    rows = []
    for policy in policies:
        values = [grid[(w, policy, ratio)]["normalized"] for w in workloads]
        rows.append([policy] + values + [geomean(values)])
    rows.sort(key=lambda r: -r[-1])
    return format_table(["Policy"] + list(workloads) + ["geomean"], rows,
                        title=title)


def run(
    scale: Optional[ScaleSpec] = None,
    workloads=None,
    policies=None,
    ratios=None,
    three_tier_workloads=None,
    verbose: bool = False,
    **_kwargs,
) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or DEFAULT_WORKLOADS
    policies = policies or policy_names()
    ratios = ratios or RATIOS
    three_tier_workloads = three_tier_workloads or workloads[:2]
    progress = (lambda msg: print(f"  running {msg}")) if verbose else None

    sections = []
    data = {"cells": {}}

    # -- 1: two-tier grid --------------------------------------------------
    grid = run_grid(workloads, policies, ratios, scale=scale,
                    progress=progress)
    for ratio in ratios:
        sections.append(_policy_table(
            grid, workloads, policies, ratio,
            title=f"Head-to-head [2-tier DRAM/NVM {ratio}] "
                  "normalised performance (all-NVM+THP = 1.0)",
        ))
        for (w, p, r), cell in grid.items():
            if r == ratio:
                data["cells"][f"2tier|{w}|{p}|{r}"] = cell["normalized"]

    # -- 2: three-tier preset ----------------------------------------------
    rows_3t = []
    for workload in three_tier_workloads:
        baseline = RunSpec(
            workload, "all-capacity", ratio=THREE_TIER_RATIO, scale=scale,
            machine_preset=THREE_TIER_PRESET, machine_variant="all-capacity",
        ).run()
        for policy in policies:
            if progress:
                progress(f"{workload} {policy} [{THREE_TIER_PRESET}]")
            result = RunSpec(
                workload, policy, ratio=THREE_TIER_RATIO, scale=scale,
                machine_preset=THREE_TIER_PRESET,
            ).run()
            normalized = baseline.runtime_ns / result.runtime_ns
            rows_3t.append([policy, workload, normalized,
                            result.migration.cascade_pages])
            data["cells"][f"3tier|{workload}|{policy}"] = normalized
    rows_3t.sort(key=lambda r: (r[1], -r[2]))
    sections.append(format_table(
        ["Policy", "Benchmark", "normalised", "cascade pages"], rows_3t,
        title=f"Head-to-head [3-tier {THREE_TIER_PRESET} {THREE_TIER_RATIO}] "
              "(normalised to all-NVM+THP)",
    ))

    # -- 3: phase-flip adaptivity scenario ---------------------------------
    flip_grid = run_grid(["phaseflip"], policies, [PHASEFLIP_RATIO],
                         scale=scale, progress=progress)
    flip_rows = []
    for policy in policies:
        cell = flip_grid[("phaseflip", policy, PHASEFLIP_RATIO)]
        stats = cell["result"].policy_stats
        adapt = stats.get("phase_resets", stats.get("coolings", 0.0))
        flip_rows.append([policy, cell["normalized"], adapt])
        data["cells"][f"phaseflip|{policy}"] = cell["normalized"]
    flip_rows.sort(key=lambda r: -r[1])
    sections.append(format_table(
        ["Policy", "normalised", "resets/coolings"], flip_rows,
        title=f"Phase-flip scenario [{PHASEFLIP_RATIO}]: hot set jumps to a "
              "disjoint range mid-run",
    ))
    arms_stats = flip_grid[("phaseflip", "arms", PHASEFLIP_RATIO)][
        "result"].policy_stats if "arms" in policies else {}

    # -- summary -----------------------------------------------------------
    overall = {
        policy: geomean(
            [grid[(w, policy, r)]["normalized"]
             for w in workloads for r in ratios]
        )
        for policy in policies
    }
    ranked = sorted(overall, key=lambda p: -overall[p])
    summary = bar_chart(
        ranked, [overall[p] for p in ranked],
        title="Head-to-head geomean across the 2-tier grid", reference=1.0,
    )
    headline = (
        f"\n{len(policies)} policies x {len(workloads)} benchmarks; "
        f"2-tier winner: {ranked[0]} ({overall[ranked[0]]:.2f}), "
        f"phase-flip winner: {flip_rows[0][0]} ({flip_rows[0][1]:.2f})"
    )
    if arms_stats:
        headline += (
            f"; ARMS detected {arms_stats.get('phase_resets', 0):.0f} "
            "phase resets"
        )
    headline += "."
    data.update({"overall_geomean": overall,
                 "phaseflip": {r[0]: r[1] for r in flip_rows}})
    text = "\n\n".join(sections) + "\n\n" + summary + headline
    return ExperimentResult(
        "headtohead", "Full-registry policy head-to-head", text, data=data
    )


def main() -> None:
    run(verbose=True).print()


if __name__ == "__main__":
    main()
