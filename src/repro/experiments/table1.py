"""Table 1: qualitative comparison of tiered memory systems.

Regenerated from each policy implementation's :class:`Traits` row, so
the table always reflects what the code actually does.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult
from repro.policies.registry import make_policy

ROW_ORDER = [
    "autonuma",
    "autotiering",
    "tiering-0.8",
    "tpp",
    "nimble",
    "multi-clock",
    "tmts",
    "hemem",
    "memtis",
]


def run(scale=None, **_kwargs) -> ExperimentResult:
    headers = [
        "System",
        "Tracking",
        "Subpage",
        "Promotion metric",
        "Demotion metric",
        "Thresholding",
        "Critical-path migr.",
        "Page size",
    ]
    rows = []
    for name in ROW_ORDER:
        traits = make_policy(name).traits
        rows.append(
            [
                name,
                traits.mechanism,
                "Yes" if traits.subpage_tracking else "No",
                traits.promotion_metric,
                traits.demotion_metric,
                traits.threshold_criteria,
                traits.critical_path_migration,
                traits.page_size_handling,
            ]
        )
    text = format_table(headers, rows, title="Table 1: system comparison")
    return ExperimentResult("table1", "Comparison of tiered memory systems",
                            text, data={"rows": rows})


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
