"""Extension: the §8 discussion, measured -- TMTS vs MEMTIS.

The paper argues (§8) that TMTS targets a different regime: it keeps a
secondary-tier residency around 25% with SLO-safe demotion, which works
when the hot set fits DRAM (the 2:1 configuration) but degrades when the
hot working set exceeds the fast tier (1:8/1:16).  This experiment runs
our TMTS-style policy (adaptive cold-age demotion, sample-once
promotion, split-on-demotion) against MEMTIS across those regimes.

Expected shape: competitive at 2:1, increasingly behind MEMTIS as the
fast tier shrinks.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import BaselineCache, ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

WORKLOADS = ["xsbench", "silo", "btree", "654.roms"]
RATIOS = ["2:1", "1:2", "1:8"]


def run(scale: Optional[ScaleSpec] = None, workloads=None, ratios=None,
        **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or WORKLOADS
    ratios = ratios or RATIOS
    baselines = BaselineCache(scale)
    rows = []
    data = {}
    for name in workloads:
        row = [name]
        for ratio in ratios:
            baseline = baselines.get(name, ratio)
            cell = {}
            for policy in ("tmts", "memtis"):
                result = run_experiment(name, policy, ratio=ratio, scale=scale)
                cell[policy] = baseline.runtime_ns / result.runtime_ns
            gap = (cell["memtis"] / cell["tmts"] - 1) * 100
            row.extend([cell["tmts"], cell["memtis"], f"{gap:+.1f}%"])
            data[f"{name}|{ratio}"] = dict(cell, gap_pct=gap)
        rows.append(row)
    headers = ["Benchmark"]
    for ratio in ratios:
        headers.extend([f"TMTS {ratio}", f"MEMTIS {ratio}", f"gap {ratio}"])
    text = format_table(
        headers, rows,
        title="TMTS-style policy vs MEMTIS across tiering regimes (§8)",
    )
    return ExperimentResult("tmts", "TMTS comparison (§8)", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
