"""Fig. 1: DAMON accuracy / overhead trade-off on 654.roms.

Runs the DAMON region monitor over the roms workload in the paper's
three configurations (``s-m-X`` = sampling interval, min regions, max
regions) and reports, per configuration:

* the CPU overhead of monitoring (paper: 2.15%, 3.18%, 72.85%);
* an accuracy score: Spearman-style rank correlation between the
  per-region access intensities DAMON reports and the ground-truth page
  access counts the simulator knows;
* an ASCII heat map (address x time), the analogue of the paper's plots.

The expected shape: the coarse config (a) and the slow config (b) are
cheap but inaccurate in space/time respectively; the accurate config
(c) costs an order of magnitude more CPU.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.ascii import heatmap
from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult
from repro.policies.damon import FIG1_CONFIGS, DamonMonitor
from repro.sim.engine import Simulation
from repro.sim.machine import DEFAULT_SCALE, MachineSpec, ScaleSpec
from repro.workloads.registry import make_workload


def _accuracy(monitor: DamonMonitor, true_counts: np.ndarray) -> float:
    """Correlation between DAMON's region intensities and ground truth."""
    per_page = np.zeros_like(true_counts, dtype=np.float64)
    weight = np.zeros_like(true_counts, dtype=np.float64)
    for _now, regions in monitor.snapshots:
        for start, end, accesses in regions:
            end = min(end, len(per_page))
            if end > start:
                per_page[start:end] += accesses
                weight[start:end] += 1
    mask = weight > 0
    if mask.sum() < 2:
        return 0.0
    est = per_page[mask] / weight[mask]
    truth = true_counts[mask].astype(np.float64)
    if est.std() == 0 or truth.std() == 0:
        return 0.0
    return float(np.corrcoef(est, truth)[0, 1])


def run(scale: Optional[ScaleSpec] = None, configs=None, **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    configs = configs or list(FIG1_CONFIGS)
    rows = []
    maps = {}
    data = {}
    for label in configs:
        config = FIG1_CONFIGS[label]
        # Small batches: monitor ticks are quantised to batch boundaries,
        # and the fast configs sample every few hundred microseconds.
        workload = make_workload("654.roms", scale, batch_size=2048)
        machine = MachineSpec.from_ratio(workload.total_bytes, ratio="1:2")
        monitor = DamonMonitor(config)
        sim = Simulation(workload, monitor, machine)
        # Ground truth: count every access per page.
        true_counts = np.zeros(sim.space.num_vpns, dtype=np.int64)
        original = sim._process_batch

        def counted(batch, _orig=original, _tc=true_counts):
            np.add.at(_tc, batch.vpn, 1)
            _orig(batch)

        sim._process_batch = counted
        sim.run()
        overhead = monitor.cpu_overhead()
        accuracy = _accuracy(monitor, true_counts)
        rows.append([label, f"{overhead * 100:.2f}%", f"{accuracy:.3f}",
                     len(monitor.regions)])
        maps[label] = heatmap(monitor.heatmap(), title=f"Fig. 1 heat map [{label}]")
        data[label] = {"cpu_overhead": overhead, "accuracy": accuracy}
    table = format_table(
        ["Config (s-m-X)", "CPU overhead", "Accuracy (corr.)", "Regions"],
        rows,
        title="Fig. 1: DAMON accuracy vs overhead (654.roms)",
    )
    text = table + "\n\n" + "\n\n".join(maps[l] for l in configs)
    return ExperimentResult("fig1", "DAMON monitoring trade-off", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
