"""Fig. 6: scalability -- Graph500 RSS grows, DRAM stays fixed.

The paper grows Graph500 from 128 GB to 690 GB against a fixed 64 GB
fast tier; MEMTIS's margin over the second-best system *widens* with
RSS (8.1%-60.5%) because precise hotness classification matters more as
the fast tier becomes a smaller fraction of the footprint.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult
from repro.policies.registry import FIG5_POLICIES, make_policy
from repro.policies.static import AllCapacityPolicy
from repro.sim.engine import Simulation
from repro.sim.machine import MachineSpec, ScaleSpec
from repro.workloads.graph500 import Graph500Workload

PAPER_RSS_GB = [128, 192, 336, 690]
FAST_GB = 64

#: Fig. 6 sweeps up to 690 paper-GB; a dedicated reduced scale keeps the
#: largest point tractable while preserving the RSS:DRAM proportions.
FIG6_SCALE = ScaleSpec(
    bytes_per_paper_gb=512 * 1024,
    accesses_per_paper_gb=18_000,
    min_bytes=48 * 1024 * 1024,
    min_accesses_per_page=40,
)


def run(
    scale: Optional[ScaleSpec] = None,
    rss_points=None,
    policies=None,
    **_kwargs,
) -> ExperimentResult:
    scale = scale or FIG6_SCALE
    rss_points = rss_points or PAPER_RSS_GB
    policies = policies or FIG5_POLICIES
    fast_bytes = scale.bytes_for(FAST_GB)

    rows = []
    data = {}
    for rss_gb in rss_points:
        total_bytes = scale.bytes_for(rss_gb)
        accesses = scale.accesses_for(rss_gb)
        machine = MachineSpec(
            fast_bytes=fast_bytes,
            capacity_bytes=int(total_bytes * 1.3),
            capacity_kind="nvm",
        )
        baseline_sim = Simulation(
            Graph500Workload(total_bytes, accesses),
            AllCapacityPolicy(),
            machine.collapse_to_slowest(),
        )
        baseline = baseline_sim.run()
        cell = {}
        for policy_name in policies:
            sim = Simulation(
                Graph500Workload(total_bytes, accesses),
                make_policy(policy_name),
                machine,
            )
            result = sim.run()
            cell[policy_name] = baseline.runtime_ns / result.runtime_ns
        best_other = max(v for p, v in cell.items() if p != "memtis")
        margin = (cell.get("memtis", 0.0) / best_other - 1) * 100
        rows.append([f"{rss_gb}GB"] + [cell[p] for p in policies]
                    + [f"{margin:+.1f}%"])
        data[rss_gb] = dict(cell, margin_pct=margin)

    text = format_table(
        ["RSS"] + list(policies) + ["memtis vs 2nd"],
        rows,
        title=f"Fig. 6: Graph500 scalability (fixed {FAST_GB}GB-equivalent DRAM)",
    )
    return ExperimentResult("fig6", "Scalability with growing RSS", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
