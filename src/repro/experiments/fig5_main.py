"""Fig. 5: the headline comparison.

Seven systems x eight benchmarks x three tiering ratios (1:2, 1:8,
1:16), NVM capacity tier, normalised to the all-NVM-with-THP baseline.
The paper's claims to reproduce:

* MEMTIS performs best in almost all cases (paper: 23/24);
* MEMTIS's geomean is well above the per-cell second-best system.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii import bar_chart
from repro.analysis.tables import format_table
from repro.experiments.common import (
    ALL_WORKLOADS,
    ExperimentResult,
    geomean,
    run_grid,
)
from repro.policies.registry import FIG5_POLICIES
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec

RATIOS = ["1:2", "1:8", "1:16"]


def run(
    scale: Optional[ScaleSpec] = None,
    workloads=None,
    policies=None,
    ratios=None,
    capacity_kind: str = "nvm",
    verbose: bool = False,
    **_kwargs,
) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    policies = policies or FIG5_POLICIES
    ratios = ratios or RATIOS
    progress = (lambda msg: print(f"  running {msg}")) if verbose else None
    grid = run_grid(workloads, policies, ratios, scale=scale,
                    capacity_kind=capacity_kind, progress=progress)

    sections = []
    wins = 0
    cells = 0
    margins = []
    data = {"cells": {}}
    for ratio in ratios:
        rows = []
        for workload in workloads:
            normalized = {
                policy: grid[(workload, policy, ratio)]["normalized"]
                for policy in policies
            }
            best_other = max(
                (v for p, v in normalized.items() if p != "memtis"), default=0.0
            )
            memtis = normalized.get("memtis", 0.0)
            cells += 1
            if memtis >= best_other:
                wins += 1
            if best_other > 0:
                margins.append(memtis / best_other)
            rows.append([workload] + [normalized[p] for p in policies]
                        + [f"{(memtis / best_other - 1) * 100:+.1f}%"])
            for policy in policies:
                data["cells"][f"{workload}|{policy}|{ratio}"] = normalized[policy]
        rows.append(
            ["geomean"]
            + [
                geomean([grid[(w, p, ratio)]["normalized"] for w in workloads])
                for p in policies
            ]
            + [""]
        )
        sections.append(
            format_table(
                ["Benchmark"] + list(policies) + ["memtis vs 2nd"],
                rows,
                title=f"Fig. 5 [{ratio}] normalised performance (all-NVM+THP = 1.0)",
            )
        )

    overall = {
        policy: geomean(
            [grid[(w, policy, r)]["normalized"] for w in workloads for r in ratios]
        )
        for policy in policies
    }
    summary = bar_chart(
        list(overall.keys()), list(overall.values()),
        title="Fig. 5 geomean across all benchmarks and ratios", reference=1.0,
    )
    margin = (geomean(margins) - 1) * 100 if margins else 0.0
    headline = (
        f"\nMEMTIS best in {wins}/{cells} cells "
        f"(paper: 23/24); geomean margin over per-cell second best: "
        f"{margin:+.1f}% (paper: +33.6%)."
    )
    data.update({"wins": wins, "cells": cells, "margin_pct": margin,
                 "overall_geomean": overall})
    text = "\n\n".join(sections) + "\n\n" + summary + headline
    return ExperimentResult("fig5", "Main performance comparison", text, data=data)


def main() -> None:
    run(verbose=True).print()


if __name__ == "__main__":
    main()
