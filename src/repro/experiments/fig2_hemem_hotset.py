"""Fig. 2: HeMem's classified hot set over time (PageRank, XSBench).

The paper's point: with static thresholds the identified hot set bears
no relation to the fast tier size -- on PageRank it stays far *below*
the DRAM line (arbitrary cold pages fill the rest), while on XSBench it
transiently *exceeds* DRAM (an arbitrary subset gets placed).

We run HeMem on both workloads and plot its ``hot_bytes`` timeline
against the fast tier size.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii import timeline_chart
from repro.experiments.common import ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

WORKLOADS = ["pagerank", "xsbench"]


def run(scale: Optional[ScaleSpec] = None, workloads=None, ratio: str = "1:2",
        **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or WORKLOADS
    charts = []
    data = {}
    for name in workloads:
        result = run_experiment(name, "hemem", ratio=ratio, scale=scale)
        times = [p.now_ns / 1e9 for p in result.metrics.timeline]
        hot_mb = [p.policy_stats.get("hot_bytes", 0.0) / 1e6
                  for p in result.metrics.timeline]
        fast_mb = result.machine.fast_bytes / 1e6
        chart = timeline_chart(
            times,
            {"hot set (MB)": hot_mb, "dram size (MB)": [fast_mb] * len(times)},
            title=(
                f"Fig. 2 [{name}]: HeMem classified hot set vs DRAM "
                f"({fast_mb:.1f} MB)"
            ),
        )
        above = sum(1 for h in hot_mb if h > fast_mb)
        below = sum(1 for h in hot_mb if h < 0.5 * fast_mb)
        chart += (
            f"\npoints above DRAM: {above}/{len(hot_mb)}; "
            f"points under half of DRAM: {below}/{len(hot_mb)}"
        )
        charts.append(chart)
        data[name] = {
            "times_s": times,
            "hot_mb": hot_mb,
            "fast_mb": fast_mb,
        }
    return ExperimentResult(
        "fig2", "HeMem hot-set classification over time",
        "\n\n".join(charts), data=data,
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
