"""Command-line entry point: ``python -m repro.experiments fig5 ...``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import EXPERIMENT_REGISTRY, SMOKE_SCALE, load_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig5 table2); 'all' runs everything")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--smoke", action="store_true",
                        help="run at the tiny smoke scale (fast, rough shapes)")
    parser.add_argument("--save-dir", metavar="DIR",
                        help="also write each result as JSON into DIR")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for exp_id, module in sorted(EXPERIMENT_REGISTRY.items()):
            print(f"{exp_id:10s} {module}")
        return 0

    ids = list(EXPERIMENT_REGISTRY) if args.experiments == ["all"] else args.experiments
    scale = SMOKE_SCALE if args.smoke else None
    for exp_id in ids:
        module = load_experiment(exp_id)
        result = module.run(scale=scale)
        result.print()
        if args.save_dir:
            import os

            os.makedirs(args.save_dir, exist_ok=True)
            result.save(os.path.join(args.save_dir, f"{exp_id}.json"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
