"""Command-line entry point: ``python -m repro.experiments fig5 ...``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import EXPERIMENT_REGISTRY, SMOKE_SCALE, load_experiment
from repro.sim import cache as result_cache
from repro.sim import sweep


def add_execution_args(parser: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--cache-dir`` / ``--no-cache``, shared with repro.cli."""
    parser.add_argument("--jobs", "-j", type=int, metavar="N",
                        help="worker processes for simulation sweeps "
                             "(default: $REPRO_JOBS or 1 = serial)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="persistent result cache location "
                             "(default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro-memtis)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")


def apply_execution_args(args) -> None:
    """Install ``--jobs``/``--cache-dir``/``--no-cache`` as process defaults.

    Every experiment module then picks them up through
    ``run_grid``/``run_experiment`` without per-module plumbing.
    """
    if getattr(args, "jobs", None):
        sweep.set_default_jobs(args.jobs)
    if getattr(args, "no_cache", False):
        result_cache.configure(enabled=False)
    elif getattr(args, "cache_dir", None):
        result_cache.configure(cache_dir=args.cache_dir)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig5 table2); 'all' runs everything")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--smoke", action="store_true",
                        help="run at the tiny smoke scale (fast, rough shapes)")
    parser.add_argument("--save-dir", metavar="DIR",
                        help="also write each result as JSON into DIR")
    add_execution_args(parser)
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for exp_id, module in sorted(EXPERIMENT_REGISTRY.items()):
            print(f"{exp_id:10s} {module}")
        return 0

    apply_execution_args(args)
    ids = list(EXPERIMENT_REGISTRY) if args.experiments == ["all"] else args.experiments
    scale = SMOKE_SCALE if args.smoke else None
    for exp_id in ids:
        module = load_experiment(exp_id)
        result = module.run(scale=scale)
        result.print()
        if args.save_dir:
            import os

            os.makedirs(args.save_dir, exist_ok=True)
            result.save(os.path.join(args.save_dir, f"{exp_id}.json"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
