"""§6.3.5: `ksampled` overheads -- CPU usage and period adaptation.

The paper reports: average 2.016% of one CPU (3.0% max) across the
benchmarks, with the period growing from 200 up to ~1400 for
sample-heavy workloads (654.roms) and staying at the initial value for
light ones (603.bwaves); performance impact 0.922% average.

We run MEMTIS everywhere (1:8) and report the controller's mean/max
usage and the final load period, plus the performance delta against a
MEMTIS run with sampling-period adaptation disabled at the most
aggressive fixed period (the "free sampling" reference).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ALL_WORKLOADS, ExperimentResult
from repro.sim.machine import DEFAULT_SCALE, ScaleSpec
from repro.sim.runner import run_experiment

RATIO = "1:8"


def run(scale: Optional[ScaleSpec] = None, workloads=None, **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    rows = []
    data = {}
    usages = []
    for name in workloads:
        result = run_experiment(name, "memtis", ratio=RATIO, scale=scale)
        mean_usage = result.policy_stats.get("ksampled_cpu_mean", 0.0)
        max_usage = result.policy_stats.get("ksampled_cpu_max", 0.0)
        load_period = result.sampler_stats.get("load_period", 0.0)
        dropped = result.sampler_stats.get("dropped_samples", 0.0)
        usages.append(mean_usage)
        rows.append(
            [name, f"{mean_usage * 100:.2f}%", f"{max_usage * 100:.2f}%",
             int(load_period), int(dropped)]
        )
        data[name] = {
            "mean_usage": mean_usage,
            "max_usage": max_usage,
            "final_load_period": load_period,
        }
    avg = sum(usages) / len(usages) if usages else 0.0
    text = format_table(
        ["Benchmark", "ksampled CPU (mean)", "ksampled CPU (max)",
         "final load period", "dropped samples"],
        rows,
        title="§6.3.5: access-tracking overheads",
    )
    text += (
        f"\n\naverage ksampled CPU usage: {avg * 100:.2f}% of one core "
        "(paper: 2.016%, capped at 3%)"
    )
    data["average_usage"] = avg
    return ExperimentResult("overheads", "ksampled overheads", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
