"""Fig. 7: the 2:1 configuration (Meta's production target).

Compares MEMTIS and TPP at fast:capacity = 2:1, with the all-DRAM
(with and without THP) runs as references.  The paper's shape: MEMTIS
tracks all-DRAM closely (except the SPEC pair), beating TPP by
6.1%-33.3% where the sampled footprint exceeds DRAM and matching it
where the hot set trivially fits.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import ALL_WORKLOADS, BaselineCache, ExperimentResult
from repro.policies.static import AllFastPolicy
from repro.sim.engine import Simulation
from repro.sim.machine import DEFAULT_SCALE, MachineSpec, ScaleSpec
from repro.sim.runner import run_experiment
from repro.workloads.registry import make_workload

POLICIES = ["tpp", "memtis"]


def run(scale: Optional[ScaleSpec] = None, workloads=None, **_kwargs) -> ExperimentResult:
    scale = scale or DEFAULT_SCALE
    workloads = workloads or ALL_WORKLOADS
    baselines = BaselineCache(scale)
    rows = []
    data = {}
    for name in workloads:
        baseline = baselines.get(name, "2:1")
        cell = {}
        for policy in POLICIES:
            result = run_experiment(name, policy, ratio="2:1", scale=scale)
            cell[policy] = baseline.runtime_ns / result.runtime_ns
        # All-DRAM references.
        for label, force_base in (("all-dram+thp", False), ("all-dram-thp", True)):
            workload = make_workload(name, scale)
            machine = MachineSpec.from_ratio(
                workload.total_bytes, ratio="2:1"
            ).collapse_to_fastest()
            sim = Simulation(workload, AllFastPolicy(), machine,
                             force_base_pages=force_base)
            result = sim.run()
            cell[label] = baseline.runtime_ns / result.runtime_ns
        gap = (cell["memtis"] / cell["tpp"] - 1) * 100
        dram_ratio = cell["memtis"] / cell["all-dram+thp"]
        rows.append(
            [name, cell["all-dram+thp"], cell["all-dram-thp"], cell["tpp"],
             cell["memtis"], f"{gap:+.1f}%", f"{dram_ratio * 100:.0f}%"]
        )
        data[name] = dict(cell, memtis_vs_tpp_pct=gap)
    text = format_table(
        ["Benchmark", "All-DRAM w/THP", "All-DRAM w/o THP", "TPP", "MEMTIS",
         "MEMTIS vs TPP", "MEMTIS / all-DRAM"],
        rows,
        title="Fig. 7: 2:1 configuration (normalised to all-NVM+THP)",
    )
    return ExperimentResult("fig7", "2:1 configuration vs TPP", text, data=data)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
