"""Fig. 3: hotness vs huge-page utilisation (Liblinear, Silo).

For every huge page we measure its total access count ("hotness") and
its utilisation (number of 4 KiB subpages accessed, 0..512) from the
ground-truth trace, reproducing the paper's PEBS-derived scatter.

Expected shape: Liblinear's hot huge pages have *high* utilisation
(positive correlation -- splitting cannot help), while Silo's hot huge
pages touch only a small fraction of their subpages (no positive
correlation -- splitting pays off).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult
from repro.mem.pages import SUBPAGES_PER_HUGE
from repro.policies.static import AllCapacityPolicy
from repro.sim.engine import Simulation
from repro.sim.machine import DEFAULT_SCALE, MachineSpec, ScaleSpec
from repro.workloads.registry import make_workload

WORKLOADS = ["liblinear", "silo"]


def _scatter_ascii(util: np.ndarray, hot: np.ndarray, title: str,
                   width: int = 64, height: int = 16) -> str:
    grid = [[" "] * width for _ in range(height)]
    log_hot = np.log10(np.maximum(hot, 1))
    hmax = log_hot.max() or 1.0
    for u, lh in zip(util, log_hot):
        x = int(u / SUBPAGES_PER_HUGE * (width - 1))
        y = height - 1 - int(lh / hmax * (height - 1))
        grid[y][x] = "*"
    lines = [title]
    lines.extend("".join(row) for row in grid)
    lines.append("(x: utilisation 0..512 subpages, y: log10 access count)")
    return "\n".join(lines)


def measure_utilization(workload_name: str, scale: Optional[ScaleSpec] = None,
                        sample_period: int = 200):
    """Per-huge-page (hotness, utilisation) from a PEBS-like sample.

    Like the paper (§2.3), utilisation is computed from *sampled*
    accesses (every ``sample_period``-th, matching the PEBS load
    period): a subpage counts as utilised when at least one sample hit
    it, so rarely-touched subpages correctly read as unused.
    """
    scale = scale or DEFAULT_SCALE
    workload = make_workload(workload_name, scale)
    machine = MachineSpec.from_ratio(workload.total_bytes, ratio="1:2").collapse_to_slowest()
    sim = Simulation(workload, AllCapacityPolicy(), machine)
    counts = np.zeros(sim.space.num_vpns, dtype=np.int64)
    original = sim._process_batch

    def counted(batch, _orig=original, _counts=counts):
        np.add.at(_counts, batch.vpn[::sample_period], 1)
        _orig(batch)

    sim._process_batch = counted
    sim.run()
    hpns = sim.space.mapped_huge_hpns()
    per_hp = counts[: len(counts) // SUBPAGES_PER_HUGE * SUBPAGES_PER_HUGE]
    per_hp = per_hp.reshape(-1, SUBPAGES_PER_HUGE)
    hot = per_hp[hpns].sum(axis=1)
    util = (per_hp[hpns] > 0).sum(axis=1)
    accessed = hot > 0
    return hot[accessed], util[accessed]


def run(scale: Optional[ScaleSpec] = None, workloads=None, **_kwargs) -> ExperimentResult:
    workloads = workloads or WORKLOADS
    charts = []
    rows = []
    data = {}
    for name in workloads:
        hot, util = measure_utilization(name, scale)
        corr = 0.0
        if len(hot) > 2 and hot.std() and util.std():
            corr = float(np.corrcoef(np.log10(np.maximum(hot, 1)), util)[0, 1])
        # Utilisation of the hottest decile: the pages tiering would place.
        order = np.argsort(-hot)
        top = order[: max(1, len(order) // 10)]
        top_util = float(util[top].mean()) / SUBPAGES_PER_HUGE
        rows.append([name, len(hot), f"{corr:.3f}", f"{top_util * 100:.1f}%"])
        charts.append(
            _scatter_ascii(util, hot, f"Fig. 3 [{name}]: hotness vs utilisation")
        )
        data[name] = {
            "hotness": hot.tolist(),
            "utilization": util.tolist(),
            "correlation": corr,
            "hot_decile_utilization": top_util,
        }
    table = format_table(
        ["Benchmark", "Huge pages", "corr(log hot, util)", "Hot-decile utilisation"],
        rows,
        title="Fig. 3: subpage access skew in huge pages",
    )
    return ExperimentResult(
        "fig3", "Huge page utilisation analysis",
        table + "\n\n" + "\n\n".join(charts), data=data,
    )


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
