"""MemtisPolicy: the full system, composed of `ksampled` + `kmigrated`.

Everything MEMTIS does -- sample processing, threshold adaptation,
cooling, promotion, demotion, huge-page split/collapse -- happens in
daemon context here; :meth:`on_batch` always returns 0 critical-path
nanoseconds, which is the paper's headline structural property ("the
entire process of MEMTIS ... never extends critical path", §3).

Ablation switches (used by Figs. 10-13):

* ``enable_split=False``  -> MEMTIS-NS (no huge-page split);
* ``enable_warm_set=False`` -> no T_warm demotion protection (vanilla);
* ``dynamic_period=False`` -> fixed PEBS periods;
* ``adaptation_interval_samples`` / ``cooling_interval_samples`` -> the
  Fig. 13 sensitivity sweeps.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.config import MemtisConfig
from repro.core.migrator import KMigrated
from repro.core.sampler import KSampled
from repro.mem.tiers import FASTEST_TIER, TierIndex
from repro.pebs.sampler import SamplerConfig
from repro.policies.base import BatchObservation, PolicyContext, TieringPolicy, Traits


class MemtisPolicy(TieringPolicy):
    """Histogram-guided tiering with skewness-aware page sizing."""

    name = "memtis"
    uses_pebs = True
    traits = Traits(
        mechanism="HW-based sampling",
        subpage_tracking=True,
        promotion_metric="EMA of access frequency",
        demotion_metric="EMA of access frequency",
        threshold_criteria="memory access distribution",
        critical_path_migration="none",
        page_size_handling="split based on access skew",
    )

    def __init__(self, config: Optional[MemtisConfig] = None, **overrides):
        super().__init__()
        base = config or MemtisConfig()
        if overrides:
            base = dataclasses.replace(base, **overrides)
        self.config = base
        self.ksampled: Optional[KSampled] = None
        self.kmigrated: Optional[KMigrated] = None

    def sampler_config(self) -> SamplerConfig:
        return SamplerConfig(
            load_period=self.config.load_period,
            store_period=self.config.store_period,
        )

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        total = ctx.tiers.total_capacity_bytes()
        self.config = self.config.resolved(
            fast_bytes=ctx.tiers.fast.capacity_bytes, total_bytes=total
        )
        self.ksampled = KSampled(self.config, ctx)
        self.kmigrated = KMigrated(self.config, ctx, self.ksampled)

    # -- placement: fast tier whenever available (§4.2.1) ---------------------------

    def choose_alloc_tier(self, nbytes: int) -> TierIndex:
        return FASTEST_TIER  # per-chunk fallback spills down-tier

    def on_region_alloc(self, region) -> None:
        self.ksampled.on_region_alloc(region)

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self.ksampled is not None:
            self.ksampled.on_unmap(base_vpn, num_vpns)
        if self.kmigrated is not None:
            self.kmigrated.on_unmap(base_vpn, num_vpns)

    def on_demand_map(self, vpns: np.ndarray) -> None:
        self.ksampled.on_demand_map(vpns)

    # -- the daemons -------------------------------------------------------------------

    def on_batch(self, obs: BatchObservation) -> float:
        ks = self.ksampled
        num_samples = 0
        if obs.samples is not None and len(obs.samples):
            num_samples = len(obs.samples)
            ks.process_samples(obs.samples)
        ks.update_period(num_samples, obs.batch_wall_ns)

        if ks.adaptation_due():
            ks.adapt()
        if ks.cooling_due():
            ks.cool()
        if ks.estimation_due():
            ehr, rhr = ks.finish_estimation_window()
            self.kmigrated.consider_split(ehr, rhr)
        return 0.0  # never extends the critical path

    def on_tick(self, now_ns: float) -> None:
        self.kmigrated.tick(now_ns)

    # -- checkpoint support -----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["ksampled"] = self.ksampled.state_dict()
        state["kmigrated"] = self.kmigrated.state_dict()
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        super().load_state(state)
        self.ksampled.load_state(state["ksampled"])
        self.kmigrated.load_state(state["kmigrated"])

    # -- reporting ------------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        out = dict(self.ksampled.set_sizes())
        out.update(
            {
                "t_hot": float(self.ksampled.thresholds.hot),
                "t_warm": float(self.ksampled.thresholds.warm),
                "t_cold": float(self.ksampled.thresholds.cold),
                "t_base_hot": float(self.ksampled.base_thresholds.hot),
                "ehr": self.ksampled.last_ehr,
                "rhr": self.ksampled.last_rhr,
                "adaptations": float(self.ksampled.adaptations),
                "coolings": float(self.ksampled.coolings_requested),
            }
        )
        out.update(self.kmigrated.stats())
        if self.ksampled.controller is not None:
            out["ksampled_cpu_mean"] = self.ksampled.controller.mean_usage
            out["ksampled_cpu_max"] = self.ksampled.controller.max_usage
        return out
