"""`kmigrated`: MEMTIS's background migration daemon (§4.2.3, §4.3.3).

One instance stands in for the paper's per-memory-node pair of kernel
threads.  Woken periodically, it:

* **promotes** queued hot pages from the capacity tier while the fast
  tier has free space;
* **demotes** when fast-tier free space falls below the 2% headroom:
  cold pages first, then -- only if pressure persists -- warm pages, so
  as many warm pages as possible stay in DRAM (the Fig. 10 ablation
  disables this protection);
* **splits** queued huge pages: each subpage is classified hot/cold by
  its subpage hotness against the base histogram's threshold, all-zero
  (never touched) subpages are freed outright, and the pieces are placed
  on their proper tiers;
* **collapses** previously split ranges back into a huge page when every
  constituent base page is hot (§4.3.3 -- rare by design).

Everything here runs off the critical path: migration nanoseconds are
charged to the background budget, never to the application.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.core.config import MemtisConfig
from repro.core.sampler import KSampled
from repro.core.split import (
    SplitDecision,
    choose_split_candidates,
    num_splits,
    split_benefit,
)
from repro.mem.pages import (
    BASE_PAGE_SIZE,
    HUGE_PAGE_SIZE,
    SUBPAGES_PER_HUGE,
    hpn_to_vpn,
    vpn_to_hpn,
)
from repro.mem.tiers import FASTEST_TIER
from repro.obs.tracer import DEBUG as TRACE_DEBUG
from repro.policies.base import PolicyContext, scaled_headroom


class KMigrated:
    """Background promotion/demotion/split/collapse."""

    MAX_SPLITS_PER_TICK = 64
    #: Oversized promotion candidates skipped per tick before giving up.
    #: Bounds the work wasted on huge pages that cannot fit (each skip
    #: may already have paid for a partial demotion pass) while still
    #: letting hotter-than-threshold base pages behind them promote.
    MAX_PROMOTE_SKIPS = 8

    def __init__(self, config: MemtisConfig, ctx: PolicyContext, ksampled: KSampled):
        self.config = config
        self.ctx = ctx
        self.ksampled = ksampled
        self._next_tick_ns = 0.0
        self.split_queue: List[int] = []
        self.split_hpns: Set[int] = set()
        # Run counters live in the shared observability registry; the
        # int attributes below are properties over these instruments.
        self.tracer = ctx.obs.tracer
        self.counters = ctx.obs.counters.scope("kmigrated")
        self._c_splits = self.counters.counter("splits")
        self._c_collapses = self.counters.counter("collapses")
        self._c_split_rounds = self.counters.counter("split_rounds")
        self._c_promoted = self.counters.counter("promoted_pages")
        self._c_demoted = self.counters.counter("demoted_pages")
        self._g_split_queue = self.counters.gauge("split_queue")
        self.splits_done = 0
        self.collapses_done = 0
        self.split_rounds_triggered = 0
        self._benefit_streak = 0
        #: Last benefit-estimation outcome, for introspection/debugging.
        self.last_decision: SplitDecision = SplitDecision(
            ehr=0.0, rhr=0.0, benefit=0.0, n_splits=0, candidates=[]
        )

    # -- registry-backed run counters (assignable for test harnesses) ------------

    @property
    def splits_done(self) -> int:
        return self._c_splits.value

    @splits_done.setter
    def splits_done(self, value: int) -> None:
        self._c_splits.value = value

    @property
    def collapses_done(self) -> int:
        return self._c_collapses.value

    @collapses_done.setter
    def collapses_done(self, value: int) -> None:
        self._c_collapses.value = value

    @property
    def split_rounds_triggered(self) -> int:
        return self._c_split_rounds.value

    @split_rounds_triggered.setter
    def split_rounds_triggered(self, value: int) -> None:
        self._c_split_rounds.value = value

    def _demote_dst(self) -> int:
        """Demotions from DRAM land one tier below; the migration
        engine's cascade handles deeper overflow on N-tier machines."""
        target = self.ctx.tiers.demote_target(FASTEST_TIER)
        return FASTEST_TIER if target is None else target

    # -- periodic wakeup ------------------------------------------------------------

    def tick(self, now_ns: float) -> None:
        if now_ns < self._next_tick_ns:
            return
        self._next_tick_ns = now_ns + self.config.kmigrated_period_ns
        self._process_split_queue()
        self._promote()
        self._demote_if_needed()
        if self.config.enable_collapse:
            self._maybe_collapse()
        self._g_split_queue.set(float(len(self.split_queue)))

    # -- promotion --------------------------------------------------------------------

    def _promote(self) -> None:
        """Move queued hot capacity-tier pages into free fast-tier space."""
        queue = self.ksampled.promotion_queue
        if not queue:
            return
        space = self.ctx.space
        tiers = self.ctx.tiers
        headroom = int(tiers.fast.capacity_bytes * self.config.free_space_fraction)
        reps = np.fromiter(queue, dtype=np.int64)
        # Sort ascending first: set iteration order depends on insertion
        # history, which differs between the scalar and vectorized
        # sample-folding kernels; a deterministic tie-break keeps both
        # paths bit-identical.
        reps.sort()
        # Hottest first: promote the most valuable pages into what fits.
        order = np.argsort(-self.ksampled.main_bin[reps], kind="stable")
        migrator = self.ctx.migrator
        t_hot = self.ksampled.thresholds.hot
        promoted = 0
        promoted_bytes = 0
        skips = 0
        for rep in reps[order].tolist():
            if space.page_tier[rep] <= FASTEST_TIER:
                queue.discard(rep)
                continue
            rep_bin = int(self.ksampled.main_bin[rep])
            if rep_bin < t_hot:
                # Enqueued under a stale (lower) threshold; no longer hot.
                queue.discard(rep)
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[rep] else BASE_PAGE_SIZE
            if tiers.fast.avail_bytes < nbytes:
                # Make room by demoting *strictly colder* pages only --
                # "where there are no cold pages in the fast tier and
                # MEMTIS needs to secure free space ... it proceeds to
                # demote warm pages" (§4.2.1).  The strict ordering makes
                # every exchange raise the fast tier's total hotness, so
                # promotion converges instead of thrashing.
                self._demote(
                    nbytes - tiers.fast.avail_bytes,
                    allow_warm=True,
                    max_bin=rep_bin,
                )
                if tiers.fast.avail_bytes < nbytes:
                    # Skip the page that will not fit (typically a huge
                    # page with no colder 2 MiB worth of victims) rather
                    # than break: a hotter-than-threshold base page later
                    # in the order may still fit.  Left queued for the
                    # next tick.
                    skips += 1
                    if skips >= self.MAX_PROMOTE_SKIPS:
                        break
                    continue
            migrator.migrate_page(rep, FASTEST_TIER, critical=False)
            queue.discard(rep)
            promoted += 1
            promoted_bytes += nbytes
            if self.tracer.enabled_for("migrate", TRACE_DEBUG):
                self.tracer.emit(
                    "migrate", "promote", TRACE_DEBUG,
                    vpn=rep, bin=rep_bin, bytes=nbytes,
                )
        if promoted:
            self._c_promoted.inc(promoted)
            if self.tracer.enabled_for("migrate"):
                self.tracer.emit(
                    "migrate", "promote_batch",
                    pages=promoted, bytes=promoted_bytes,
                    queue_left=len(queue),
                )

    # -- demotion -------------------------------------------------------------------------

    def _fast_tier_reps(self) -> np.ndarray:
        space = self.ctx.space
        reps = np.flatnonzero(
            (self.ksampled.main_weight > 0)
            & (space.page_tier == FASTEST_TIER)
        )
        return reps

    def _demote_if_needed(self) -> None:
        """Restore the 2% free-space headroom (§4.2.3)."""
        tiers = self.ctx.tiers
        target = scaled_headroom(
            tiers.fast.capacity_bytes, self.config.free_space_fraction
        )
        if tiers.fast.free_bytes >= target:
            return
        self._demote(target - tiers.fast.free_bytes, allow_warm=True)

    def _demote(self, need: int, allow_warm: bool, max_bin: int = None) -> None:
        """Demote ``need`` bytes: cold pages first, warm only if allowed.

        ``max_bin`` restricts victims to pages strictly colder than that
        bin (used by promotion-driven demotion).  With the warm set
        disabled (Fig. 10's vanilla ablation) every non-hot page is fair
        game in address order -- near-hot pages get demoted and promptly
        promoted back, inflating migration traffic.
        """
        reps = self._fast_tier_reps()
        if len(reps) == 0:
            return
        bins = self.ksampled.main_bin[reps]
        if max_bin is not None:
            keep = bins < max_bin
            reps = reps[keep]
            bins = bins[keep]
            if len(reps) == 0:
                return
        t = self.ksampled.thresholds

        if self.config.enable_warm_set:
            cold_mask = bins < t.cold
            cold = reps[cold_mask]
            order_cold = np.argsort(bins[cold_mask], kind="stable")
            candidates = cold[order_cold]
            if allow_warm:
                warm_mask = (bins >= t.cold) & (bins < t.hot)
                warm = reps[warm_mask]
                order_warm = np.argsort(bins[warm_mask], kind="stable")
                candidates = np.concatenate([candidates, warm[order_warm]])
        else:
            candidates = reps[bins < t.hot]

        if len(candidates) == 0:
            return
        space = self.ctx.space
        # Candidates are unique fast-tier reps; the sequential loop took
        # victims in order until `need` was covered, i.e. the shortest
        # prefix whose cumulative size reaches `need` (or everything).
        nbytes = np.where(
            space.page_huge[candidates], HUGE_PAGE_SIZE, BASE_PAGE_SIZE
        )
        cum = np.cumsum(nbytes)
        k = min(int(np.searchsorted(cum, need, side="left")) + 1, len(candidates))
        self.ctx.migrator.migrate_many(
            candidates[:k], self._demote_dst(), critical=False
        )
        self._c_demoted.inc(k)
        if self.tracer.enabled_for("migrate"):
            self.tracer.emit(
                "migrate", "demote",
                pages=k, bytes=int(cum[k - 1]), need=int(need),
                allow_warm=allow_warm,
                max_bin=None if max_bin is None else int(max_bin),
            )

    # -- huge page split (§4.3) ---------------------------------------------------------------

    def consider_split(self, ehr: float, rhr: float) -> int:
        """One benefit-estimation round; returns huge pages enqueued."""
        if not self.config.enable_split:
            return 0
        # Long-term trends only (§3): no split decisions before the first
        # cooling pass has aged out the initial placement transient.
        if self.ksampled.coolings_requested < 1:
            return 0
        benefit = split_benefit(ehr, rhr)
        if benefit < self.config.min_split_benefit:
            self._benefit_streak = 0
            return 0
        # "MEMTIS makes the split decision after observing long-term page
        # access trends" (§3): require the benefit to persist across two
        # consecutive estimation windows, filtering transient gaps while
        # the placement is still converging.
        self._benefit_streak += 1
        if self._benefit_streak < 2:
            return 0
        space = self.ctx.space
        hpns = space.mapped_huge_hpns()
        if len(hpns) == 0:
            return 0
        counts = self.ksampled.meta.huge_count[hpns]
        accessed = hpns[counts > 0]
        if len(accessed) == 0:
            return 0
        avg_samples_hp = float(counts[counts > 0].mean())
        nr_samples = int(counts[counts > 0].sum())
        tiers = self.ctx.tiers
        n = num_splits(
            benefit=benefit,
            latency_fast_ns=tiers.fast.spec.load_latency_ns,
            latency_cap_ns=tiers.capacity.spec.load_latency_ns,
            nr_samples=nr_samples,
            avg_samples_hp=avg_samples_hp,
            beta=self.config.split_beta,
        )
        if n <= 0:
            return 0
        sub = self.ksampled.meta.sub_count
        heads = hpn_to_vpn(accessed)
        sub_counts = np.stack(
            [sub[h : h + SUBPAGES_PER_HUGE] for h in heads.tolist()]
        )
        threshold_hotness = max(1, self.ksampled.base_cut_hotness)
        picked = choose_split_candidates(
            accessed, sub_counts, threshold_hotness, n, comp=self.ksampled.comp
        )
        queued = [h for h in picked if h not in self.split_hpns]
        self.split_queue.extend(queued)
        self.split_hpns.update(queued)
        self.last_decision = SplitDecision(
            ehr=ehr, rhr=rhr, benefit=benefit, n_splits=n, candidates=picked
        )
        if queued:
            self.split_rounds_triggered += 1
        if self.tracer.enabled_for("split"):
            self.tracer.emit(
                "split", "split_decision",
                queued=len(queued), **self.last_decision.to_dict(),
            )
        return len(queued)

    def _process_split_queue(self) -> None:
        space = self.ctx.space
        budget = self.MAX_SPLITS_PER_TICK
        while self.split_queue and budget > 0:
            hpn = self.split_queue.pop(0)
            head = hpn_to_vpn(hpn)
            if not space.page_huge[head]:
                # Raced with free/remap: drop the tracking entry too, or
                # the hpn stays in split_hpns forever and consider_split
                # can never re-queue that slot once it is huge again.
                self.split_hpns.discard(hpn)
                continue
            self._split_one(hpn)
            budget -= 1

    def _split_one(self, hpn: int) -> None:
        """Classify subpages, free zero pages, migrate the hot ones."""
        space = self.ctx.space
        tiers = self.ctx.tiers
        head = hpn_to_vpn(hpn)
        sub_hot = (
            self.ksampled.meta.sub_count[head : head + SUBPAGES_PER_HUGE]
            * self.ksampled.comp
            >= max(1, self.ksampled.base_cut_hotness)
        )
        touched = space.touched[head : head + SUBPAGES_PER_HUGE]
        headroom = scaled_headroom(
            tiers.fast.capacity_bytes, self.config.free_space_fraction
        )

        subpage_tiers = []
        fast_budget = tiers.fast.avail_bytes - headroom // 2
        src_fast = space.page_tier[head] == FASTEST_TIER
        demote_to = self._demote_dst()
        for j in range(SUBPAGES_PER_HUGE):
            if not touched[j]:
                subpage_tiers.append(None)  # all-zero: unmap and free
                continue
            if sub_hot[j]:
                if src_fast:
                    subpage_tiers.append(FASTEST_TIER)
                elif fast_budget >= BASE_PAGE_SIZE:
                    subpage_tiers.append(FASTEST_TIER)
                    fast_budget -= BASE_PAGE_SIZE
                else:
                    subpage_tiers.append(demote_to)
            else:
                subpage_tiers.append(demote_to)
        kept_mask = np.array([t is not None for t in subpage_tiers], dtype=bool)
        self.ctx.migrator.split_huge(hpn, subpage_tiers, critical=False)
        self.ksampled.on_split(hpn, kept_mask)
        self.splits_done += 1
        if self.tracer.enabled_for("split"):
            n_fast = sum(1 for t in subpage_tiers if t == FASTEST_TIER)
            n_cap = sum(
                1 for t in subpage_tiers
                if t is not None and t != FASTEST_TIER
            )
            self.tracer.emit(
                "split", "split",
                hpn=hpn, hot_subpages=int(sub_hot.sum()),
                to_fast=n_fast, to_capacity=n_cap,
                freed=SUBPAGES_PER_HUGE - int(kept_mask.sum()),
            )

    # -- coalescing (§4.3.3, conservative) ---------------------------------------------------

    def _maybe_collapse(self) -> None:
        """Coalesce a split range back when *all* subpages are hot."""
        space = self.ctx.space
        threshold_hotness = max(1, self.ksampled.base_cut_hotness)
        for hpn in list(self.split_hpns):
            head = hpn_to_vpn(hpn)
            sl = slice(head, head + SUBPAGES_PER_HUGE)
            if space.page_huge[head]:
                self.split_hpns.discard(hpn)  # already huge again
                continue
            if np.any(space.page_tier[sl] < 0):
                continue  # freed subpages: cannot coalesce
            hotness = self.ksampled.meta.sub_count[sl] * self.ksampled.comp
            if not np.all(hotness >= threshold_hotness):
                continue
            # Collapse frees the subpages before re-mapping the 2 MiB
            # range (unmap-then-map, like khugepaged), so bytes already
            # resident on the fast tier come back mid-operation; only
            # the *difference* needs to be free.  Demanding the full
            # 2 MiB would wrongly block collapse near capacity -- the
            # common case, since all-hot ranges live mostly in DRAM.
            resident_fast = int(
                np.count_nonzero(space.page_tier[sl] == FASTEST_TIER)
            ) * BASE_PAGE_SIZE
            if not self.ctx.tiers.fast.can_alloc(HUGE_PAGE_SIZE - resident_fast):
                continue
            self.ctx.migrator.collapse_huge(hpn, FASTEST_TIER, critical=False)
            self.ksampled.on_collapse(hpn)
            self.split_hpns.discard(hpn)
            self.collapses_done += 1
            if self.tracer.enabled_for("split"):
                self.tracer.emit("split", "collapse", hpn=hpn)

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        """Drop split bookkeeping for a freed range.

        Without this, an hpn split inside a region that is later freed
        survives in ``split_hpns``; when the slot is recycled as a fresh
        huge mapping, ``_maybe_collapse`` could coalesce it spuriously
        and ``consider_split`` would refuse to ever split it again.
        """
        lo = vpn_to_hpn(base_vpn)
        hi = vpn_to_hpn(base_vpn + num_vpns + SUBPAGES_PER_HUGE - 1)
        if self.split_queue:
            self.split_queue = [
                h for h in self.split_queue if not lo <= h < hi
            ]
        if self.split_hpns:
            self.split_hpns = {
                h for h in self.split_hpns if not lo <= h < hi
            }

    def stats(self) -> Dict[str, float]:
        return {
            "splits": float(self.splits_done),
            "collapses": float(self.collapses_done),
            "split_queue": float(len(self.split_queue)),
        }

    # -- checkpoint support -------------------------------------------------
    # Registry-backed counters (`splits_done` etc.) are restored with the
    # shared counter registry.  ``split_queue`` keeps its order (it is a
    # FIFO); ``split_hpns`` is serialised sorted for stable bytes.

    def state_dict(self) -> dict:
        return {
            "next_tick_ns": self._next_tick_ns,
            "split_queue": list(self.split_queue),
            "split_hpns": sorted(self.split_hpns),
            "benefit_streak": self._benefit_streak,
            "last_decision": self.last_decision.to_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._next_tick_ns = float(state["next_tick_ns"])
        self.split_queue = [int(h) for h in state["split_queue"]]
        self.split_hpns = set(int(h) for h in state["split_hpns"])
        self._benefit_streak = int(state["benefit_streak"])
        self.last_decision = SplitDecision(**state["last_decision"])
