"""`ksampled`: MEMTIS's sample-processing daemon (§4.1, §4.2.1, §4.3.1).

For every PEBS record, `ksampled`:

1. updates the page access metadata (huge-page counter + subpage counter,
   the compound-page layout of §5);
2. moves the page between bins of the **page access histogram** (hotness
   ``H_i = C_i`` for a huge page, ``C_i * nr_subpages`` for a base page);
3. moves the 4 KiB page in the **emulated base page histogram** (hotness
   ``C * nr_subpages`` regardless of actual mapping size) -- the
   what-if-only-base-pages world used for split benefit estimation;
4. accounts rHR (did the sample hit the fast tier?) and eHR (is the
   4 KiB page hotter than the base histogram's hot threshold?);
5. enqueues capacity-tier pages that crossed ``T_hot`` for promotion.

It also adapts the thresholds every ``adaptation_interval`` samples
(Algorithm 1), requests cooling every ``cooling_interval`` samples, and
runs the dynamic sampling-period controller against its own modelled CPU
usage (3% cap).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro import kernels
from repro.obs.tracer import DEBUG as TRACE_DEBUG
from repro.core.config import MemtisConfig
from repro.core.histogram import AccessHistogram, bin_of, bin_of_array
from repro.kernels.sample_fold import (
    FoldParams,
    FoldState,
    fold_samples_scalar,
    fold_samples_validate,
    fold_samples_vectorized,
)
from repro.core.thresholds import (
    INITIAL_THRESHOLDS,
    Thresholds,
    adapt_thresholds,
    cold_set_bytes,
    hot_set_bytes,
    warm_set_bytes,
)
from repro.mem.pages import (
    BASE_PAGE_SIZE,
    PageMetadataTable,
    SUBPAGES_PER_HUGE,
    vpn_to_hpn,
)
from repro.mem.tiers import FASTEST_TIER
from repro.pebs.overhead import CpuOverheadModel, SamplingPeriodController
from repro.pebs.sampler import SampleBatch
from repro.policies.base import PolicyContext


class KSampled:
    """Sample processing, histograms, thresholds, rHR/eHR, period control."""

    def __init__(self, config: MemtisConfig, ctx: PolicyContext):
        self.config = config
        self.ctx = ctx
        num_vpns = ctx.space.num_vpns

        # Observability: the run counters below live in the shared
        # registry (serialised into SimResult.to_dict()["observability"])
        # instead of ad-hoc ints; the int-valued attributes
        # (`total_samples`, `adaptations`, `coolings_requested`) are
        # properties over these instruments.
        self.tracer = ctx.obs.tracer
        self.counters = ctx.obs.counters.scope("ksampled")
        self._c_samples = self.counters.counter("samples")
        self._c_adaptations = self.counters.counter("adaptations")
        self._c_coolings = self.counters.counter("coolings")
        self._g_promq = self.counters.gauge("promotion_queue")
        self._g_ehr = self.counters.gauge("ehr")
        self._g_rhr = self.counters.gauge("rhr")
        self._g_t_hot = self.counters.gauge("t_hot")
        self._g_t_warm = self.counters.gauge("t_warm")
        self._g_t_cold = self.counters.gauge("t_cold")
        self._d_fold = self.counters.distribution("fold_batch_samples")

        self.meta = PageMetadataTable(num_vpns)
        self.hist = AccessHistogram()
        self.base_hist = AccessHistogram()
        #: Current histogram bin of each page representative (-1 = absent).
        self.main_bin = np.full(num_vpns, -1, dtype=np.int16)
        #: 4 KiB-page weight of each representative (512 huge / 1 base).
        self.main_weight = np.zeros(num_vpns, dtype=np.int16)
        #: Current base-histogram bin of each mapped 4 KiB page.
        self.base_bin = np.full(num_vpns, -1, dtype=np.int16)

        self.thresholds: Thresholds = INITIAL_THRESHOLDS
        self.base_thresholds: Thresholds = INITIAL_THRESHOLDS
        #: Exact hotness cut for eHR: the hotness of the page that would
        #: just fit the usable fast tier if only base pages existed.  The
        #: bin-granular base threshold is too coarse at simulation scale
        #: (one PEBS sample already lands a page in bin 9), so the eHR
        #: estimate uses this quantile instead.
        self.base_cut_hotness: int = 1
        #: Fraction of pages *at* the cut hotness that still fit DRAM
        #: (ties share the remaining capacity).
        self.base_cut_fraction: float = 1.0
        self._tie_credit = 0.0
        self.promotion_queue: Set[int] = set()

        self._since_adaptation = 0
        self._since_cooling = 0
        self._since_estimation = 0
        self._window_samples = 0
        self._rhr_hits = 0
        self._ehr_hits = 0
        self.total_samples = 0
        self.adaptations = 0
        self.coolings_requested = 0
        self.last_ehr = 0.0
        self.last_rhr = 0.0

        #: Base-page hotness compensation factor (ablation: 1 disables).
        self.comp = SUBPAGES_PER_HUGE if config.compensate_base_hotness else 1

        self.overhead = CpuOverheadModel()
        self.controller: Optional[SamplingPeriodController] = None
        if config.dynamic_period:
            self.controller = SamplingPeriodController(
                limit=config.cpu_limit, hysteresis=config.cpu_hysteresis,
                min_load_period=config.load_period,
                max_load_period=config.load_period * 7,
                min_store_period=config.store_period,
                max_store_period=config.store_period * 7,
            )

    # -- registry-backed run counters (assignable for test harnesses) ------------

    @property
    def total_samples(self) -> int:
        return self._c_samples.value

    @total_samples.setter
    def total_samples(self, value: int) -> None:
        self._c_samples.value = value

    @property
    def adaptations(self) -> int:
        return self._c_adaptations.value

    @adaptations.setter
    def adaptations(self, value: int) -> None:
        self._c_adaptations.value = value

    @property
    def coolings_requested(self) -> int:
        return self._c_coolings.value

    @coolings_requested.setter
    def coolings_requested(self, value: int) -> None:
        self._c_coolings.value = value

    # -- region lifecycle --------------------------------------------------------

    def on_region_alloc(self, region) -> None:
        """Seed new pages at the current hot threshold (§4.2.1).

        "Initial hotness for newly allocated pages is set to the current
        hotness threshold to prevent them from being immediately chosen
        as demotion candidates."  We seed the bin arrays directly; the
        next cooling rebuild re-derives bins from real counters, so the
        boost decays exactly like any other stale hotness.
        """
        space = self.ctx.space
        t_hot = self.thresholds.hot if self.config.seed_new_pages else 0
        # The base histogram is *not* seeded at the threshold: it emulates
        # the pure count-derived distribution used for eHR, and seeding it
        # would count every fresh page as an estimated hit.
        t_base = 0
        vpns = np.arange(region.base_vpn, region.end_vpn)
        huge = space.page_huge[vpns]
        heads = vpns[huge][:: SUBPAGES_PER_HUGE] if huge.any() else vpns[:0]
        base = vpns[~huge]

        if len(heads):
            self.main_bin[heads] = t_hot
            self.main_weight[heads] = SUBPAGES_PER_HUGE
            self.hist.add(t_hot, int(len(heads)) * SUBPAGES_PER_HUGE)
            # Seed the compound-page counter itself so the page *stays*
            # at T_hot as samples arrive (and decays through cooling like
            # any other hotness).  This is what lets MEMTIS promote
            # fresh, immediately-hot allocations "as soon as they are
            # sampled once" (§6.2.8).  Subpage counters stay zero, so
            # utilisation/skewness statistics are not polluted.
            if self.config.seed_new_pages:
                self.meta.huge_count[vpn_to_hpn(heads)] = 1 << t_hot
        if len(base):
            self.main_bin[base] = t_hot
            self.main_weight[base] = 1
            self.hist.add(t_hot, int(len(base)))
        self.base_bin[vpns] = t_base
        self.base_hist.add(t_base, int(len(vpns)))

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        """Remove a freed range from both histograms and reset counters."""
        sl = slice(base_vpn, base_vpn + num_vpns)
        main_present = self.main_bin[sl] >= 0
        if main_present.any():
            bins = self.main_bin[sl][main_present].astype(np.int64)
            weights = self.main_weight[sl][main_present].astype(np.int64)
            self.hist.bins -= np.bincount(
                bins, weights=weights, minlength=self.hist.num_bins
            ).astype(np.int64)
        base_present = self.base_bin[sl] >= 0
        if base_present.any():
            bins = self.base_bin[sl][base_present].astype(np.int64)
            self.base_hist.bins -= np.bincount(
                bins, minlength=self.base_hist.num_bins
            ).astype(np.int64)
        self.main_bin[sl] = -1
        self.main_weight[sl] = 0
        self.base_bin[sl] = -1
        self.meta.reset_range(base_vpn, num_vpns)
        # The promotion queue is deliberately NOT scanned here: a full
        # O(|queue|) rescan per region free dominated short-lived
        # allocation churn.  Stale entries are pruned lazily at drain
        # time instead -- `KMigrated._promote` re-checks every entry
        # against `page_tier`/`main_bin` and discards the dead ones.

    def on_demand_map(self, vpns: np.ndarray) -> None:
        """Seed base pages demand-mapped after a split freed them."""
        t_hot = self.thresholds.hot
        t_base = 0
        fresh = vpns[self.main_bin[vpns] < 0]
        if len(fresh):
            self.main_bin[fresh] = t_hot
            self.main_weight[fresh] = 1
            self.hist.add(t_hot, int(len(fresh)))
        fresh_base = vpns[self.base_bin[vpns] < 0]
        if len(fresh_base):
            self.base_bin[fresh_base] = t_base
            self.base_hist.add(t_base, int(len(fresh_base)))

    # -- the per-sample hot path ----------------------------------------------------

    def process_samples(self, samples: SampleBatch) -> None:
        """Fold one batch of PEBS records into all statistics.

        Dispatches to the :mod:`repro.kernels.sample_fold` kernels:
        the vectorized fold by default, the original per-sample loop
        under ``REPRO_SCALAR_KERNELS=1``, or both with a state-equality
        assertion in ``validate`` mode.  All paths produce bit-identical
        counters, histograms and promotion-queue membership.
        """
        space = self.ctx.space
        params = FoldParams(
            page_tier=space.page_tier,
            page_huge=space.page_huge,
            fast=FASTEST_TIER,
            t_hot=self.thresholds.hot,
            comp=self.comp,
            base_cut=self.base_cut_hotness,
            base_cut_fraction=self.base_cut_fraction,
            tie_credit=self._tie_credit,
        )
        state = FoldState(
            sub_count=self.meta.sub_count,
            huge_count=self.meta.huge_count,
            main_bin=self.main_bin,
            main_weight=self.main_weight,
            base_bin=self.base_bin,
            hist=self.hist,
            base_hist=self.base_hist,
        )
        mode = kernels.active_mode()
        if mode == kernels.SCALAR:
            res = fold_samples_scalar(state, samples.vpn, params)
        elif mode == kernels.VALIDATE:
            res = fold_samples_validate(state, samples.vpn, params)
        else:
            res = fold_samples_vectorized(state, samples.vpn, params)

        self.total_samples += res.processed
        self._since_adaptation += res.processed
        self._since_cooling += res.processed
        self._since_estimation += res.processed
        self._window_samples += res.processed
        self._rhr_hits += res.rhr_hits
        self._ehr_hits += res.ehr_hits
        self._tie_credit = res.tie_credit
        self.promotion_queue.update(res.promoted)
        self._d_fold.record(res.processed)
        self._g_promq.set(float(len(self.promotion_queue)))
        tracer = self.tracer
        if tracer.enabled_for("sample", TRACE_DEBUG):
            tracer.emit(
                "sample", "sample_fold", TRACE_DEBUG,
                processed=res.processed, rhr_hits=res.rhr_hits,
                ehr_hits=res.ehr_hits, promoted=len(res.promoted),
                promotion_queue=len(self.promotion_queue),
            )

    # -- periodic duties ------------------------------------------------------------

    def adaptation_due(self) -> bool:
        return self._since_adaptation >= self.config.adaptation_interval_samples

    def cooling_due(self) -> bool:
        return self._since_cooling >= self.config.cooling_interval_samples

    def estimation_due(self) -> bool:
        return self._since_estimation >= self.config.estimation_interval_samples

    def adapt(self) -> None:
        """Algorithm 1 over both histograms.

        Thresholds are computed against the *usable* fast capacity
        (capacity minus the free-space headroom kmigrated maintains): at
        paper scale the 2% headroom is negligible, but at simulation
        scale it can be ~10% of a small DRAM, and sizing the hot set --
        and especially the eHR estimate -- to unreachable capacity would
        leave a permanent phantom split benefit.
        """
        from repro.policies.base import scaled_headroom

        fast_bytes = self.ctx.tiers.fast.capacity_bytes
        usable = max(
            BASE_PAGE_SIZE,
            fast_bytes - scaled_headroom(
                fast_bytes, self.config.free_space_fraction
            ),
        )
        old = self.thresholds
        self.thresholds = adapt_thresholds(
            self.hist, usable, alpha=self.config.alpha
        )
        self.base_thresholds = adapt_thresholds(
            self.base_hist, usable, alpha=self.config.alpha
        )
        self._update_base_cut(usable)
        self._since_adaptation = 0
        self.adaptations += 1
        self._g_t_hot.set(float(self.thresholds.hot))
        self._g_t_warm.set(float(self.thresholds.warm))
        self._g_t_cold.set(float(self.thresholds.cold))
        if self.tracer.enabled_for("threshold"):
            self.tracer.emit(
                "threshold", "threshold_update",
                old=old.to_dict(), new=self.thresholds.to_dict(),
                base_hot=self.base_thresholds.hot,
                base_cut_hotness=self.base_cut_hotness,
                base_cut_fraction=self.base_cut_fraction,
                usable_fast_bytes=usable,
            )

    def _update_base_cut(self, usable_fast_bytes: int) -> None:
        """Exact hotness of the marginal base page that still fits DRAM.

        ``base_cut_hotness`` is the hotness of the K-th hottest 4 KiB
        page (K = usable fast pages); pages strictly hotter always fit,
        pages *at* the cut fit with probability ``base_cut_fraction``
        (they tie for the remaining slots).  eHR accounting credits ties
        fractionally, which keeps the estimate honest under sparse
        sampling where thousands of pages share one sample count.
        """
        space = self.ctx.space
        mapped = np.flatnonzero(space.page_tier >= 0)
        fast_pages = usable_fast_bytes // BASE_PAGE_SIZE
        if len(mapped) == 0 or fast_pages <= 0:
            self.base_cut_hotness = 1
            self.base_cut_fraction = 1.0
            return
        hotness = self.meta.sub_count[mapped].astype(np.int64) * self.comp
        if fast_pages >= len(mapped):
            self.base_cut_hotness = 0
            self.base_cut_fraction = 1.0
            return
        cut = int(np.partition(hotness, -fast_pages)[-fast_pages])
        self.base_cut_hotness = cut
        above = int(np.count_nonzero(hotness > cut))
        at = int(np.count_nonzero(hotness == cut))
        self.base_cut_fraction = (
            (fast_pages - above) / at if at > 0 else 1.0
        )

    def finish_estimation_window(self):
        """Close the rHR/eHR window; returns (ehr, rhr) over it."""
        window = max(1, self._window_samples)
        ehr = self._ehr_hits / window
        rhr = self._rhr_hits / window
        self.last_ehr, self.last_rhr = ehr, rhr
        self._g_ehr.set(ehr)
        self._g_rhr.set(rhr)
        self._window_samples = 0
        self._rhr_hits = 0
        self._ehr_hits = 0
        self._since_estimation = 0
        return ehr, rhr

    def cool(self) -> None:
        """Halve every counter and rebuild histograms/bins exactly.

        The paper shifts the histogram and has `kmigrated` walk the page
        lists halving counters, correcting top-bin stragglers afterwards;
        rebuilding from the halved counters yields the same final state
        in one vectorised pass.
        """
        self.meta.cool()
        self._since_cooling = 0
        self.coolings_requested += 1
        if self.tracer.enabled_for("cooling"):
            self.tracer.emit(
                "cooling", "cooling",
                cooling_number=self.coolings_requested,
                total_samples=self.total_samples,
            )

        space = self.ctx.space
        mapped = space.page_tier >= 0

        self.main_bin[:] = -1
        self.main_weight[:] = 0
        self.base_bin[:] = -1

        hpns = space.mapped_huge_hpns()
        heads = hpns << 9
        if len(heads):
            bins = bin_of_array(self.meta.huge_count[hpns])
            self.main_bin[heads] = bins.astype(np.int16)
            self.main_weight[heads] = SUBPAGES_PER_HUGE
        base_vpns = np.flatnonzero(mapped & ~space.page_huge)
        if len(base_vpns):
            bins = bin_of_array(self.meta.sub_count[base_vpns] * self.comp)
            self.main_bin[base_vpns] = bins.astype(np.int16)
            self.main_weight[base_vpns] = 1

        present = self.main_weight > 0
        self.hist.rebuild(
            self.main_bin[present].astype(np.int64),
            self.main_weight[present].astype(np.int64),
        )

        all_vpns = np.flatnonzero(mapped)
        if len(all_vpns):
            bins = bin_of_array(self.meta.sub_count[all_vpns] * self.comp)
            self.base_bin[all_vpns] = bins.astype(np.int16)
            self.base_hist.rebuild(
                bins.astype(np.int64), np.ones(len(all_vpns), dtype=np.int64)
            )
        else:
            self.base_hist.bins[:] = 0

    # -- mapping-shape changes driven by kmigrated ------------------------------------

    def on_split(self, hpn: int, kept_mask: np.ndarray) -> None:
        """A huge page was split; re-account its pages in the histograms."""
        head = hpn << 9
        old_bin = int(self.main_bin[head])
        if old_bin >= 0:
            self.hist.remove(old_bin, SUBPAGES_PER_HUGE)
        self.main_bin[head : head + SUBPAGES_PER_HUGE] = -1
        self.main_weight[head : head + SUBPAGES_PER_HUGE] = 0
        self.meta.huge_count[hpn] = 0

        vpns = head + np.flatnonzero(kept_mask)
        if len(vpns):
            bins = bin_of_array(self.meta.sub_count[vpns] * self.comp)
            self.main_bin[vpns] = bins.astype(np.int16)
            self.main_weight[vpns] = 1
            self.hist.bins += np.bincount(
                bins, minlength=self.hist.num_bins
            ).astype(np.int64)
        # Freed (all-zero) subpages leave the base histogram too.
        freed = head + np.flatnonzero(~kept_mask)
        if len(freed):
            present = self.base_bin[freed] >= 0
            if present.any():
                bins = self.base_bin[freed][present].astype(np.int64)
                self.base_hist.bins -= np.bincount(
                    bins, minlength=self.base_hist.num_bins
                ).astype(np.int64)
            self.base_bin[freed] = -1
            self.meta.sub_count[freed] = 0

    def on_collapse(self, hpn: int) -> None:
        """512 base pages were coalesced into huge page ``hpn``."""
        head = hpn << 9
        sl = slice(head, head + SUBPAGES_PER_HUGE)
        present = self.main_bin[sl] >= 0
        if present.any():
            bins = self.main_bin[sl][present].astype(np.int64)
            weights = self.main_weight[sl][present].astype(np.int64)
            self.hist.bins -= np.bincount(
                bins, weights=weights, minlength=self.hist.num_bins
            ).astype(np.int64)
        total = int(self.meta.sub_count[sl].sum())
        self.meta.huge_count[hpn] = total
        new_bin = bin_of(total)
        self.main_bin[sl] = -1
        self.main_weight[sl] = 0
        self.main_bin[head] = new_bin
        self.main_weight[head] = SUBPAGES_PER_HUGE
        self.hist.add(new_bin, SUBPAGES_PER_HUGE)

    # -- dynamic sampling period --------------------------------------------------------

    def update_period(self, batch_samples: int, batch_wall_ns: float) -> None:
        """EMA CPU usage + hysteresis adjustment (§4.1.1)."""
        usage = self.overhead.window_usage(batch_samples, batch_wall_ns)
        if self.controller is None or self.ctx.sampler is None:
            return
        new_load, new_store = self.controller.update(
            usage, self.ctx.sampler.load_period, self.ctx.sampler.store_period
        )
        if (new_load, new_store) != (
            self.ctx.sampler.load_period, self.ctx.sampler.store_period
        ):
            self.ctx.sampler.set_periods(new_load, new_store)

    # -- reporting ------------------------------------------------------------------------

    def set_sizes(self) -> Dict[str, float]:
        return {
            "hot_bytes": float(hot_set_bytes(self.hist, self.thresholds)),
            "warm_bytes": float(warm_set_bytes(self.hist, self.thresholds)),
            "cold_bytes": float(cold_set_bytes(self.hist, self.thresholds)),
        }

    # -- checkpoint support ---------------------------------------------------
    # Registry-backed counters (`total_samples`, `adaptations`,
    # `coolings_requested`) and the gauges are restored with the shared
    # counter registry, not here; the promotion queue is serialised
    # sorted so the checkpoint bytes are set-iteration-order free.

    def state_dict(self) -> dict:
        state = {
            "meta": self.meta.state_dict(),
            "hist": self.hist.state_dict(),
            "base_hist": self.base_hist.state_dict(),
            "main_bin": self.main_bin.copy(),
            "main_weight": self.main_weight.copy(),
            "base_bin": self.base_bin.copy(),
            "thresholds": self.thresholds.to_dict(),
            "base_thresholds": self.base_thresholds.to_dict(),
            "base_cut_hotness": self.base_cut_hotness,
            "base_cut_fraction": self.base_cut_fraction,
            "tie_credit": self._tie_credit,
            "promotion_queue": sorted(self.promotion_queue),
            "since_adaptation": self._since_adaptation,
            "since_cooling": self._since_cooling,
            "since_estimation": self._since_estimation,
            "window_samples": self._window_samples,
            "rhr_hits": self._rhr_hits,
            "ehr_hits": self._ehr_hits,
            "last_ehr": self.last_ehr,
            "last_rhr": self.last_rhr,
            "overhead": self.overhead.state_dict(),
            "controller": (
                None if self.controller is None
                else self.controller.state_dict()
            ),
        }
        return state

    def load_state(self, state: dict) -> None:
        self.meta.load_state(state["meta"])
        self.hist.load_state(state["hist"])
        self.base_hist.load_state(state["base_hist"])
        self.main_bin[:] = np.asarray(state["main_bin"], dtype=np.int16)
        self.main_weight[:] = np.asarray(state["main_weight"], dtype=np.int16)
        self.base_bin[:] = np.asarray(state["base_bin"], dtype=np.int16)
        self.thresholds = Thresholds(**state["thresholds"])
        self.base_thresholds = Thresholds(**state["base_thresholds"])
        self.base_cut_hotness = int(state["base_cut_hotness"])
        self.base_cut_fraction = float(state["base_cut_fraction"])
        self._tie_credit = float(state["tie_credit"])
        self.promotion_queue = set(int(v) for v in state["promotion_queue"])
        self._since_adaptation = int(state["since_adaptation"])
        self._since_cooling = int(state["since_cooling"])
        self._since_estimation = int(state["since_estimation"])
        self._window_samples = int(state["window_samples"])
        self._rhr_hits = int(state["rhr_hits"])
        self._ehr_hits = int(state["ehr_hits"])
        self.last_ehr = float(state["last_ehr"])
        self.last_rhr = float(state["last_rhr"])
        self.overhead.load_state(state["overhead"])
        if self.controller is not None and state["controller"] is not None:
            self.controller.load_state(state["controller"])
