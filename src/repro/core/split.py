"""Skewness-aware huge-page split decisions (§4.3).

Three pieces:

* **Benefit estimation** (§4.3.1): the gap ``eHR - rHR`` between the
  estimated hit ratio of a hypothetical all-base-pages placement and the
  measured fast-tier hit ratio.  Splitting is considered only when the
  gap exceeds 5%.
* **Split count** (Eq. 2): how many huge pages to split this round --
  proportional to the benefit, the relative latency gap between tiers,
  and the number of distinct huge pages being accessed::

      N_s = min((eHR - rHR) * (AL / L_fast) * (nr_samples * beta / avg_samples_hp),
                nr_samples / avg_samples_hp)

* **Skewness factor** (Eq. 3): ``S_i = sum_j H_ij^2 / U_i^2`` where
  ``U_i`` is the number of hot subpages -- squaring both makes a
  concentrated (skewed) huge page score far above a uniformly hot one.
  The top-``N_s`` most skewed accessed huge pages are split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mem.pages import SUBPAGES_PER_HUGE


def split_benefit(ehr: float, rhr: float) -> float:
    """Potential hit-ratio gain of abandoning huge pages (>= 0)."""
    return max(0.0, ehr - rhr)


def num_splits(
    benefit: float,
    latency_fast_ns: float,
    latency_cap_ns: float,
    nr_samples: int,
    avg_samples_hp: float,
    beta: float = 0.4,
) -> int:
    """Eq. 2: the number of huge pages to split this estimation round."""
    if benefit <= 0 or nr_samples <= 0 or avg_samples_hp <= 0:
        return 0
    latency_ratio = (latency_cap_ns - latency_fast_ns) / latency_fast_ns
    distinct_hp = nr_samples / avg_samples_hp
    want = benefit * latency_ratio * (nr_samples * beta / avg_samples_hp)
    return int(min(want, distinct_hp))


def skewness_factors(
    sub_counts: np.ndarray,
    hot_subpage_threshold_hotness: int,
    comp: int = SUBPAGES_PER_HUGE,
) -> np.ndarray:
    """Eq. 3 for a batch of huge pages.

    ``sub_counts`` has shape ``(num_hpns, 512)`` (raw subpage access
    counts).  ``hot_subpage_threshold_hotness`` is the hotness value of
    the base histogram's hot threshold (``2^T_hot_base``); a subpage is
    *utilised* when its compensated hotness ``C * 512`` reaches it.

    Returns float64 skewness per huge page; pages with zero utilisation
    get skewness 0 (nothing hot to save by splitting them).
    """
    if sub_counts.ndim != 2 or sub_counts.shape[1] != SUBPAGES_PER_HUGE:
        raise ValueError("sub_counts must be (num_hpns, 512)")
    hotness = sub_counts.astype(np.float64) * comp
    utilization = (hotness >= hot_subpage_threshold_hotness).sum(axis=1)
    sum_sq = np.square(hotness).sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        skew = np.where(
            utilization > 0, sum_sq / np.square(utilization, dtype=np.float64), 0.0
        )
    return skew


def utilization_factors(
    sub_counts: np.ndarray, hot_subpage_threshold_hotness: int,
    comp: int = SUBPAGES_PER_HUGE,
) -> np.ndarray:
    """Paper's U_i: hot subpages per huge page (0..512)."""
    hotness = sub_counts.astype(np.float64) * comp
    return (hotness >= hot_subpage_threshold_hotness).sum(axis=1)


@dataclass
class SplitDecision:
    """Outcome of one benefit-estimation round."""

    ehr: float
    rhr: float
    benefit: float
    n_splits: int
    candidates: List[int]  # hpns, most skewed first

    @property
    def triggered(self) -> bool:
        return self.n_splits > 0 and bool(self.candidates)

    def to_dict(self) -> dict:
        """Plain dict for trace events / exports."""
        return {
            "ehr": float(self.ehr),
            "rhr": float(self.rhr),
            "benefit": float(self.benefit),
            "n_splits": int(self.n_splits),
            "candidates": [int(h) for h in self.candidates],
        }


def choose_split_candidates(
    hpns: np.ndarray,
    sub_counts: np.ndarray,
    hot_subpage_threshold_hotness: int,
    n_splits: int,
    comp: int = SUBPAGES_PER_HUGE,
) -> List[int]:
    """Top-``n_splits`` most skewed huge pages among ``hpns``.

    Mirrors §4.3.2's skewness array built during cooling: candidates
    must have at least one hot subpage and at least one cold one
    (utilisation strictly between 0 and 512), otherwise splitting cannot
    improve placement.
    """
    if n_splits <= 0 or len(hpns) == 0:
        return []
    skew = skewness_factors(sub_counts, hot_subpage_threshold_hotness, comp)
    util = utilization_factors(sub_counts, hot_subpage_threshold_hotness, comp)
    eligible = (util > 0) & (util < SUBPAGES_PER_HUGE)
    if not eligible.any():
        return []
    # Stable ordering: skewness descending, hpn ascending on ties.
    # ``np.argsort(-skew)`` is introsort (unstable): equal-skew huge
    # pages would be picked in a platform/numpy-version-dependent order,
    # which poisons checkpoint replay determinism.  ``lexsort`` is a
    # stable mergesort; its *last* key is the primary one.
    order = np.lexsort((np.asarray(hpns, dtype=np.int64), -skew))
    picked = [int(hpns[i]) for i in order if eligible[i]][:n_splits]
    return picked
