"""The 16-bin exponential page-access histogram (§4.1.3).

Bin ``n`` covers hotness ``[2^n, 2^(n+1))``; the last bin is unbounded
above.  The *value* of a bin is the number of distinct pages in that
hotness range **counted at 4 KiB granularity** -- a huge page
contributes 512 -- so ``bin_value * 4 KiB`` is directly comparable to
the fast tier capacity in Algorithm 1.

Cooling (§4.2.2) halves every hotness, which on an exponential scale is
a shift of each bin one position to the left; bins 0 and 1 merge into
bin 0 (hotness below 2 stays in bin 0) and the unbounded top bin keeps
any page whose halved hotness still lands there (the paper's "checks
the bin index of cooled pages and corrects the histogram if necessary"
-- exact correction happens when the caller rebuilds from the halved
counters, :meth:`rebuild`).
"""

from __future__ import annotations

import numpy as np

NUM_BINS = 16
_TOP = NUM_BINS - 1


def bin_of(hotness: int) -> int:
    """Histogram bin index of one hotness value."""
    if hotness < 2:
        return 0
    return min(_TOP, int(hotness).bit_length() - 1)


def bin_of_array(hotness: np.ndarray) -> np.ndarray:
    """Vectorised :func:`bin_of` for int64 hotness arrays.

    Exact integer binning (``bit_length - 1``) via binary-search shifts.
    The float path (``floor(log2(h))``) rounds ``2^k - 1`` up to ``k``
    once ``k`` exceeds the 53-bit mantissa, disagreeing with the scalar
    :func:`bin_of` at power-of-two boundaries.
    """
    h = np.maximum(hotness, 1).astype(np.int64)
    bins = np.zeros(h.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = h >= (np.int64(1) << shift)
        bins[big] += shift
        h[big] >>= shift
    return np.minimum(bins, _TOP)


class AccessHistogram:
    """Page counts per exponential hotness bin."""

    def __init__(self, num_bins: int = NUM_BINS):
        if num_bins != NUM_BINS:
            raise ValueError(
                "bin math is fixed at 16 exponential bins (paper default)"
            )
        self.bins = np.zeros(num_bins, dtype=np.int64)

    @property
    def num_bins(self) -> int:
        return len(self.bins)

    @property
    def total_pages(self) -> int:
        return int(self.bins.sum())

    def add(self, bin_index: int, weight: int = 1) -> None:
        self.bins[bin_index] += weight

    def remove(self, bin_index: int, weight: int = 1) -> None:
        self.bins[bin_index] -= weight
        if self.bins[bin_index] < 0:
            raise ValueError(
                f"bin {bin_index} went negative removing weight {weight}"
            )

    def move(self, old_bin: int, new_bin: int, weight: int = 1) -> None:
        """Relocate a page whose hotness changed bins (the hot path)."""
        if old_bin == new_bin:
            return
        self.remove(old_bin, weight)
        self.add(new_bin, weight)

    def cool(self) -> None:
        """Shift all bins one left (halving on the exponential scale).

        The unbounded top bin is approximated as moving wholly down one
        bin; callers that track exact counters should follow with
        :meth:`rebuild` to apply the paper's top-bin correction.
        """
        self.bins[0] += self.bins[1]
        self.bins[1:-1] = self.bins[2:]
        self.bins[-1] = 0

    def rebuild(self, bin_indices: np.ndarray, weights: np.ndarray) -> None:
        """Recompute all bins from per-page bins and 4 KiB-page weights."""
        self.bins[:] = np.bincount(
            bin_indices, weights=weights, minlength=self.num_bins
        ).astype(np.int64)[: self.num_bins]

    # -- size helpers for Algorithm 1 --------------------------------------------

    def pages_at_or_above(self, bin_index: int) -> int:
        """4 KiB pages in bins >= ``bin_index``."""
        return int(self.bins[bin_index:].sum())

    def bytes_at_or_above(self, bin_index: int, page_bytes: int = 4096) -> int:
        return self.pages_at_or_above(bin_index) * page_bytes

    def snapshot(self) -> np.ndarray:
        return self.bins.copy()

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> dict:
        return {"bins": self.bins.copy()}

    def load_state(self, state: dict) -> None:
        self.bins[:] = np.asarray(state["bins"], dtype=np.int64)
