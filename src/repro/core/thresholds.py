"""Algorithm 1: dynamic adaptation of the hot/warm/cold thresholds.

`ksampled` expands the hot threshold downward from the top histogram bin
for as long as the accumulated hot-set size still fits the fast tier.
If the identified hot set is "close enough" to the fast tier capacity
(``s >= MS_fast * alpha``, alpha = 0.9), the warm threshold equals the
hot one (no separate warm band is needed -- the hot set already fills
DRAM).  Otherwise the bin just below becomes *warm*: those pages stay
wherever they are, shielding near-hot pages from demotion churn
(§4.2.1).  ``T_cold = T_warm - 1`` always.

Initial values are (hot, warm, cold) = (1, 1, 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.histogram import AccessHistogram
from repro.mem.pages import BASE_PAGE_SIZE


@dataclass(frozen=True)
class Thresholds:
    """Bin-index thresholds.  hot: B >= hot; cold: B < cold; else warm."""

    hot: int
    warm: int
    cold: int

    def classify(self, bin_index: int) -> str:
        if bin_index >= self.hot:
            return "hot"
        if bin_index < self.cold:
            return "cold"
        return "warm"

    def to_dict(self) -> dict:
        """Plain dict for trace events / exports."""
        return {"hot": self.hot, "warm": self.warm, "cold": self.cold}


#: Paper initial thresholds (§4.2.1).
INITIAL_THRESHOLDS = Thresholds(hot=1, warm=1, cold=0)


def adapt_thresholds(
    histogram: AccessHistogram,
    fast_capacity_bytes: int,
    alpha: float = 0.9,
) -> Thresholds:
    """Run Algorithm 1 over the current histogram.

    Returns the new thresholds; also reports the identified hot-set size
    through :func:`hot_set_bytes` (same accumulation).
    """
    s_bytes = 0
    b = histogram.num_bins - 1
    while b >= 1:
        bin_bytes = int(histogram.bins[b]) * BASE_PAGE_SIZE
        if s_bytes + bin_bytes > fast_capacity_bytes:
            break
        s_bytes += bin_bytes
        b -= 1
    hot = b + 1

    if s_bytes >= fast_capacity_bytes * alpha:
        warm = hot
    else:
        warm = hot - 1
    cold = warm - 1
    return Thresholds(hot=hot, warm=max(warm, 0), cold=max(cold, 0))


def hot_set_bytes(histogram: AccessHistogram, thresholds: Thresholds) -> int:
    """Size of the identified hot set (bins >= T_hot)."""
    return histogram.bytes_at_or_above(thresholds.hot, BASE_PAGE_SIZE)


def warm_set_bytes(histogram: AccessHistogram, thresholds: Thresholds) -> int:
    """Size of the warm band (T_cold <= B < T_hot)."""
    if thresholds.hot <= thresholds.cold:
        return 0
    pages = int(histogram.bins[thresholds.cold : thresholds.hot].sum())
    return pages * BASE_PAGE_SIZE


def cold_set_bytes(histogram: AccessHistogram, thresholds: Thresholds) -> int:
    """Size of the cold set (B < T_cold)."""
    pages = int(histogram.bins[: thresholds.cold].sum())
    return pages * BASE_PAGE_SIZE
