"""MEMTIS configuration: every tunable with its paper value.

The paper's constants are stated in event counts (samples) or fractions,
which scale naturally with our smaller footprints; the two *sample-count*
intervals (threshold adaptation and cooling) are expressed relative to
the fast tier size exactly as the paper motivates them:

* threshold adaptation "when the total capacity of sampled pages is
  similar to the fast tier capacity" (§4.2.1) -- every 100k samples for
  the paper's gigabyte-scale DRAM, i.e. roughly ``fast_pages / 4``;
* cooling "for every two million records, large enough considering the
  gigabyte-scale fast tier" (§4.2.2) -- 20x the adaptation interval.

When the explicit interval fields are left at 0, :meth:`resolved` derives
them from the machine with those proportions, so the paper's ratios are
preserved at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.mem.pages import BASE_PAGE_SIZE


@dataclass(frozen=True)
class MemtisConfig:
    """All MEMTIS knobs (paper defaults in comments)."""

    # -- sampling (§4.1.1) --
    load_period: int = 200            # initial PEBS period, LLC load misses
    store_period: int = 100_000       # initial PEBS period, retired stores
    cpu_limit: float = 0.03           # ksampled cap: 3% of one core
    cpu_hysteresis: float = 0.005     # 0.5% band around the limit
    dynamic_period: bool = True       # __perf_event_period adjustment

    # -- histogram / classification (§4.2) --
    num_bins: int = 16
    alpha: float = 0.9                # hot-set-fullness bar for T_warm
    adaptation_interval_samples: int = 0   # 0 -> fast_pages/4 (paper: 100k)
    cooling_interval_samples: int = 0      # 0 -> 20x adaptation (paper: 2M)

    # -- migration (§4.2.3) --
    kmigrated_period_ns: float = 2e6  # paper: 500 ms wall; scaled with runs
    free_space_fraction: float = 0.02 # fast-tier free headroom target (2%)

    # -- huge page split (§4.3) --
    enable_split: bool = True
    min_split_benefit: float = 0.05   # eHR - rHR trigger bar (5%)
    split_beta: float = 0.4           # scale factor in Eq. 2
    estimation_interval_samples: int = 0  # 0 -> allocated_pages/4 (§4.3.1)
    enable_collapse: bool = True      # coalesce when all subpages are hot

    # -- ablation switches (Fig. 10 and the extra ablation bench) --
    enable_warm_set: bool = True      # T_warm demotion protection
    compensate_base_hotness: bool = True  # H_i = C_i * nr_subpages (§4.1.2)
    seed_new_pages: bool = True       # initial hotness = T_hot (§4.2.1)

    def resolved(self, fast_bytes: int, total_bytes: int) -> "MemtisConfig":
        """Fill the scale-derived intervals for a concrete machine."""
        adaptation = self.adaptation_interval_samples
        if adaptation <= 0:
            adaptation = max(512, fast_bytes // BASE_PAGE_SIZE // 4)
        cooling = self.cooling_interval_samples
        if cooling <= 0:
            # Paper: 2M records = 20x the adaptation interval.  Our traces
            # compress hours into ~a simulated second, so phases (a drifting
            # window, short-lived allocations) span far fewer samples; an
            # 8x multiplier keeps the EMA responsive at this timescale
            # (Fig. 13 shows robustness across a 0.1x-10x cooling range).
            cooling = adaptation * 8
        estimation = self.estimation_interval_samples
        if estimation <= 0:
            # Paper: a quarter of the allocated pages in *samples*.  Our
            # traces carry far fewer samples per page than hours of PEBS,
            # so we halve the window (pages/8) to keep several estimation
            # rounds per run; the two-window persistence gate preserves
            # the paper's long-term-trend requirement.
            estimation = max(1024, total_bytes // BASE_PAGE_SIZE // 8)
        return replace(
            self,
            adaptation_interval_samples=adaptation,
            cooling_interval_samples=cooling,
            estimation_interval_samples=estimation,
        )

    def __post_init__(self):
        if self.num_bins < 2:
            raise ValueError("need at least two histogram bins")
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if not 0 <= self.min_split_benefit <= 1:
            raise ValueError("min_split_benefit must be a fraction")
