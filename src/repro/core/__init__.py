"""MEMTIS: the paper's contribution.

* :mod:`repro.core.config` -- every tunable with its paper default;
* :mod:`repro.core.histogram` -- the 16-bin exponential access histogram
  with cooling-by-shift (§4.1.3, §4.2.2);
* :mod:`repro.core.thresholds` -- Algorithm 1's hot/warm/cold adaptation;
* :mod:`repro.core.sampler` -- `ksampled`: PEBS record processing, page
  metadata, both histograms, rHR/eHR accounting, dynamic sampling period;
* :mod:`repro.core.split` -- split benefit estimation (Eq. 2), skewness
  factor (Eq. 3), candidate selection;
* :mod:`repro.core.migrator` -- `kmigrated`: background promotion /
  demotion / cooling / huge-page split and collapse;
* :mod:`repro.core.policy` -- :class:`MemtisPolicy`, the composition that
  plugs into the simulator like any baseline.
"""

from repro.core.config import MemtisConfig
from repro.core.histogram import NUM_BINS, AccessHistogram, bin_of, bin_of_array
from repro.core.thresholds import Thresholds, adapt_thresholds
from repro.core.policy import MemtisPolicy

__all__ = [
    "MemtisConfig",
    "NUM_BINS",
    "AccessHistogram",
    "bin_of",
    "bin_of_array",
    "Thresholds",
    "adapt_thresholds",
    "MemtisPolicy",
]
