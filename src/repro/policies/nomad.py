"""Nomad: non-exclusive tiering with transactional migration (OSDI'24,
arXiv:2401.13154).

Two ideas from the paper:

1. **Transactional page migration (TPM).**  Promotion copies the page
   while the application keeps writing to the *old* mapping; the
   transaction commits only if no write raced the copy, otherwise it
   aborts and the copy is discarded.  Migration never blocks the app,
   but an abort pays bus time for nothing.
2. **Non-exclusive tiering (page shadowing).**  After a committed
   promotion the slow-tier frame is kept as a clean **shadow** instead
   of being freed.  While the fast copy stays clean, demoting the page
   back is a pure remap -- no copy traffic.  A write to the promoted
   page invalidates its shadow.

The model tracks shadows in policy state: shadow frames occupy
slow-tier bytes that the address space does not know about, so the
policy enforces the invariant ``shadow_bytes <= slow.free_bytes`` and
reclaims the oldest shadows first under pressure (the paper's
watermark-based shadow reclamation).

Preserved defect (the paper's own §6.4 "performance caveat"): the
duplicate residency is a **capacity tax**.  At tight fast:slow ratios
the slow tier has no spare frames, shadows are reclaimed as fast as
they are made, and Nomad degenerates to exclusive tiering while still
paying for aborted transactional copies -- visible here through the
``shadow_reclaims`` / ``aborts`` / ``aborted_copy_bytes`` stats and a
shadow hit rate that collapses under memory pressure.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE
from repro.mem.tiers import FASTEST_TIER
from repro.pebs.sampler import SamplerConfig
from repro.policies.base import BatchObservation, PolicyContext, TieringPolicy, Traits


class NomadPolicy(TieringPolicy):
    """Transactional promotion with clean-shadow (non-exclusive) demotion."""

    name = "nomad"
    uses_pebs = True
    traits = Traits(
        mechanism="HW-based sampling",
        subpage_tracking=False,
        promotion_metric="recency + frequency (transactional)",
        demotion_metric="shadow-first LRU",
        threshold_criteria="static access count",
        critical_path_migration="none",
        page_size_handling="none",
    )

    def __init__(
        self,
        hot_threshold: int = 4,
        cooling_threshold: int = 32,
        migrate_period_ns: float = 100e6,
        free_headroom: float = 0.02,
    ):
        super().__init__()
        self.hot_threshold = hot_threshold
        self.cooling_threshold = cooling_threshold
        self.migrate_period_ns = migrate_period_ns
        self.free_headroom = free_headroom
        self._next_migrate_ns = 0.0
        self._count = None
        #: Fast-resident heads whose slow-tier frame is kept as a clean
        #: shadow; ``_shadow_stamp`` orders them for oldest-first reclaim.
        self._shadow = None
        self._shadow_stamp = None
        self._shadow_nbytes = None
        self._stamp = 0
        self._shadow_bytes = 0
        #: Heads written since their promotion transaction opened (or
        #: since their shadow was made): a set bit aborts the one and
        #: invalidates the other.
        self._dirty = None
        self._pending: Set[int] = set()
        self.commits = 0
        self.aborts = 0
        self.aborted_copy_bytes = 0
        self.shadow_reclaims = 0
        self.shadow_invalidations = 0
        self.copy_free_demotions = 0
        self.copied_demotions = 0
        self.coolings = 0

    def sampler_config(self) -> SamplerConfig:
        return SamplerConfig(load_period=200, store_period=2_000)

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        n = ctx.space.num_vpns
        self._count = np.zeros(n, dtype=np.int32)
        self._shadow = np.zeros(n, dtype=bool)
        self._shadow_stamp = np.zeros(n, dtype=np.int64)
        # Size is recorded at shadow creation: by unmap-listener time the
        # address space has already cleared ``page_huge``, so the live
        # mapping shape cannot be consulted when a shadow is dropped.
        self._shadow_nbytes = np.zeros(n, dtype=np.int64)
        self._dirty = np.zeros(n, dtype=bool)

    # -- helpers ---------------------------------------------------------------

    def _page_bytes(self, vpn: int) -> int:
        return HUGE_PAGE_SIZE if self.ctx.space.page_huge[vpn] else BASE_PAGE_SIZE

    def _drop_shadow(self, vpn: int) -> None:
        self._shadow[vpn] = False
        self._shadow_bytes -= int(self._shadow_nbytes[vpn])
        self._shadow_nbytes[vpn] = 0

    def _reclaim_shadows(self, nbytes_needed: int) -> None:
        """Free the oldest shadows until ``nbytes_needed`` materialise."""
        if self._shadow_bytes == 0:
            return
        shadowed = np.flatnonzero(self._shadow)
        order = np.argsort(self._shadow_stamp[shadowed], kind="stable")
        freed = 0
        for vpn in shadowed[order].tolist():
            if freed >= nbytes_needed:
                break
            nbytes = self._page_bytes(vpn)
            self._drop_shadow(vpn)
            self.shadow_reclaims += 1
            freed += nbytes

    def _shadow_pressure(self) -> None:
        """Restore ``shadow_bytes <= slow.free_bytes``.

        Real mappings landing on the slow tier shrink its free space
        under the shadows' feet; the fiction stays consistent by
        reclaiming shadows until they fit in the actually-free frames.
        This is the capacity-tax defect doing its work: at tight ratios
        this fires every tick and the shadow set never survives.
        """
        slow = self.ctx.tiers.tier(self.demote_target())
        if self._shadow_bytes > slow.free_bytes:
            self._reclaim_shadows(self._shadow_bytes - slow.free_bytes)

    # -- sample processing -----------------------------------------------------

    def on_batch(self, obs: BatchObservation) -> float:
        samples = obs.samples
        if samples is None or len(samples) == 0:
            return 0.0
        space = self.ctx.space
        vpns = samples.vpn
        heads = np.where(space.page_huge[vpns], (vpns >> 9) << 9, vpns)
        np.add.at(self._count, heads, 1)
        # Sampled stores dirty the page: open transactions on it will
        # abort, and a clean shadow of it is stale.
        store_heads = np.unique(heads[samples.is_store])
        if len(store_heads):
            self._dirty[store_heads] = True
            stale = store_heads[self._shadow[store_heads]]
            for vpn in stale.tolist():
                self._drop_shadow(int(vpn))
                self.shadow_invalidations += 1
        hot = heads[self._count[heads] >= self.hot_threshold]
        for vpn in np.unique(hot).tolist():
            vpn = int(vpn)
            if space.page_tier[vpn] > FASTEST_TIER and vpn not in self._pending:
                # Opening the transaction starts the racy copy window:
                # writes from here to the commit attempt abort it.
                self._pending.add(vpn)
                self._dirty[vpn] = False
        if len(heads) and int(self._count[heads].max()) >= self.cooling_threshold:
            self._count >>= 1
            self.coolings += 1
        return 0.0

    # -- background migration --------------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns < self._next_migrate_ns:
            return
        self._next_migrate_ns = now_ns + self.migrate_period_ns
        space = self.ctx.space
        tiers = self.ctx.tiers
        migrator = self.ctx.migrator
        self._shadow_pressure()

        for vpn in sorted(self._pending):
            if space.page_tier[vpn] <= FASTEST_TIER:
                continue
            nbytes = self._page_bytes(vpn)
            if self._dirty[vpn]:
                # Abort: the copy happened, a concurrent write won the
                # race, the transaction rolls back.  Bus time is spent;
                # nothing moves.
                migrator.charge_side_copy(nbytes, critical=False)
                self.aborts += 1
                self.aborted_copy_bytes += nbytes
                continue
            if not tiers.fast.can_alloc(nbytes):
                self._demote_cold(nbytes)
            if not tiers.fast.can_alloc(nbytes):
                break
            migrator.migrate_page(vpn, FASTEST_TIER, critical=False)
            self.commits += 1
            # Non-exclusive tiering: keep the slow frame as a clean
            # shadow if the slow tier still has the spare capacity.
            slow = tiers.tier(self.demote_target())
            if self._shadow_bytes + nbytes <= slow.free_bytes:
                self._shadow[vpn] = True
                self._stamp += 1
                self._shadow_stamp[vpn] = self._stamp
                self._shadow_nbytes[vpn] = nbytes
                self._shadow_bytes += nbytes
                self._dirty[vpn] = False
            else:
                self.shadow_reclaims += 1
        self._pending.clear()

        headroom = self.headroom_bytes(self.free_headroom)
        if tiers.fast.free_bytes < headroom:
            self._demote_cold(headroom - tiers.fast.free_bytes)
        self._shadow_pressure()

    def _demote_cold(self, nbytes_needed: int) -> None:
        """Demote coldest fast pages, shadow-remap-first.

        A page with a live clean shadow demotes by dropping the fast
        copy and re-adopting the shadow frame: no copy traffic.  The
        shadow's bytes convert back into a real mapping, so shadow
        accounting shrinks by the same amount the tier allocation grows.
        """
        space = self.ctx.space
        fast = np.flatnonzero(space.page_tier == FASTEST_TIER)
        if len(fast) == 0:
            return
        heads = np.unique(np.where(space.page_huge[fast], (fast >> 9) << 9, fast))
        order = np.argsort(self._count[heads], kind="stable")
        dst = self.demote_target()
        freed = 0
        for vpn in heads[order].tolist():
            if freed >= nbytes_needed:
                break
            if space.page_tier[vpn] != FASTEST_TIER:
                continue
            nbytes = self._page_bytes(vpn)
            if self._shadow[vpn] and not self._dirty[vpn]:
                # The shadow frame becomes the real mapping again; free
                # its fictive bytes first so the engine's allocation
                # lands on the frames the shadow was holding.
                self._drop_shadow(vpn)
                self.ctx.migrator.migrate_page(vpn, dst, critical=False,
                                               copy_free=True)
                self.copy_free_demotions += 1
            else:
                if self._shadow[vpn]:
                    self._drop_shadow(vpn)
                    self.shadow_invalidations += 1
                self.ctx.migrator.migrate_page(vpn, dst, critical=False)
                self.copied_demotions += 1
            freed += nbytes

    # -- bookkeeping -----------------------------------------------------------

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self._count is None:
            return
        lo, hi = base_vpn, base_vpn + num_vpns
        gone = np.flatnonzero(self._shadow[lo:hi]) + lo
        for vpn in gone.tolist():
            self._drop_shadow(int(vpn))
        self._count[lo:hi] = 0
        self._dirty[lo:hi] = False
        self._shadow_stamp[lo:hi] = 0
        self._pending = {v for v in self._pending if not lo <= v < hi}

    def stats(self) -> Dict[str, float]:
        return {
            "commits": float(self.commits),
            "aborts": float(self.aborts),
            "aborted_copy_bytes": float(self.aborted_copy_bytes),
            "shadow_bytes": float(self._shadow_bytes),
            "shadow_reclaims": float(self.shadow_reclaims),
            "shadow_invalidations": float(self.shadow_invalidations),
            "copy_free_demotions": float(self.copy_free_demotions),
            "copied_demotions": float(self.copied_demotions),
            "coolings": float(self.coolings),
        }
