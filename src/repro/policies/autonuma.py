"""AutoNUMA (Linux automatic NUMA balancing) baseline.

Table 1 row: page-fault access tracking, no subpage tracking, recency
promotion metric, *no demotion*, static access-count threshold of one,
promotion on the critical path.

Mechanism: a scanner periodically write-protects a sliding window of
mapped pages; the next touch of a protected page takes a NUMA-hint
fault.  The fault handler migrates the page towards the faulting task's
node immediately -- in a tiered system, that promotes capacity-tier
pages to DRAM inside the fault, with the application blocked (§2.2).
Because AutoNUMA has no demotion, the fast tier silts up with whatever
got promoted (or allocated) first -- which ironically *helps* XSBench at
1:2 where the early allocations are the hot region (§6.2.2).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE, SUBPAGES_PER_HUGE
from repro.mem.tiers import FASTEST_TIER
from repro.policies.base import PolicyContext, TieringPolicy, Traits


class AutoNUMAPolicy(TieringPolicy):
    """NUMA-hint-fault promotion, no demotion."""

    name = "autonuma"
    traits = Traits(
        mechanism="page fault",
        subpage_tracking=False,
        promotion_metric="recency",
        demotion_metric="-",
        threshold_criteria="static access count",
        critical_path_migration="promotion",
        page_size_handling="none",
    )

    def __init__(
        self,
        scan_period_ns: float = 12e6,
        scan_fraction: float = 0.15,
        rate_limit_bytes_per_s: float = 4 * 1024**4,
    ):
        super().__init__()
        self.scan_period_ns = scan_period_ns
        self.scan_fraction = scan_fraction
        self.rate_limit_bytes_per_s = rate_limit_bytes_per_s
        self._next_scan_ns = 0.0
        self._scan_cursor = 0
        self._migrated_bytes_window = 0
        self._window_start_ns = 0.0
        self.promoted_on_fault = 0

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._ensure_protection_mask()

    # -- scanner -------------------------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns < self._next_scan_ns:
            return
        self._next_scan_ns = now_ns + self.scan_period_ns
        space = self.ctx.space
        mapped = space.page_tier >= 0
        num_mapped = int(np.count_nonzero(mapped))
        if num_mapped == 0:
            return
        window = max(SUBPAGES_PER_HUGE, int(num_mapped * self.scan_fraction))
        mapped_vpns = np.flatnonzero(mapped)
        start = self._scan_cursor % len(mapped_vpns)
        take = mapped_vpns[start : start + window]
        if len(take) < window:  # wrap around
            take = np.concatenate([take, mapped_vpns[: window - len(take)]])
        self._scan_cursor = (start + window) % max(1, len(mapped_vpns))
        self.protection_mask[take] = True

    # -- fault handler ----------------------------------------------------------

    def on_hint_faults(self, vpns: np.ndarray) -> float:
        space = self.ctx.space
        critical_ns = 0.0
        # Unprotect whole mappings (a huge page faults once for all 512).
        for vpn in vpns.tolist():
            if space.page_huge[vpn]:
                head = (vpn >> 9) << 9
                self.protection_mask[head : head + SUBPAGES_PER_HUGE] = False
            else:
                self.protection_mask[vpn] = False
            if space.page_tier[vpn] <= FASTEST_TIER:
                continue  # already on the fastest tier (or unmapped)
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            if not self.ctx.tiers.fast.can_alloc(nbytes):
                continue  # no demotion: once DRAM is full, promotion stops
            if not self._rate_allows(nbytes):
                continue
            critical_ns += self.ctx.migrator.migrate_page(
                int(vpn), FASTEST_TIER, critical=True
            )
            self.promoted_on_fault += 1
        return critical_ns

    def _rate_allows(self, nbytes: int) -> bool:
        # Token-bucket style rate limit over 100 ms windows.
        now = self._next_scan_ns  # close enough to "now" for limiting
        if now - self._window_start_ns > 100e6:
            self._window_start_ns = now
            self._migrated_bytes_window = 0
        budget = self.rate_limit_bytes_per_s * 0.1
        if self._migrated_bytes_window + nbytes > budget:
            return False
        self._migrated_bytes_window += nbytes
        return True

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self.protection_mask is not None:
            self.protection_mask[base_vpn : base_vpn + num_vpns] = False

    def stats(self) -> Dict[str, float]:
        return {"promoted_on_fault": float(self.promoted_on_fault)}
