"""Nimble Page Management (ASPLOS'19) baseline.

Table 1 row: page-table scanning, recency promotion and demotion, static
access-count threshold (one: referenced in the last scan interval means
hot), migrations off the critical path.

Mechanism: every scan interval the reference bits of all mapped pages
are harvested and cleared; every referenced capacity-tier page is
promoted (exchanging with non-referenced fast-tier pages when DRAM is
full).  Because "accessed once in the interval" is the hotness bar,
workloads that touch a broad footprint per interval (Silo's zipfian tail)
mark far more pages hot than DRAM holds, producing the paper's 56x
migration-traffic blow-up (§6.2.4).  Scanning the whole page table also
costs CPU proportional to the footprint -- the scalability wall of §2.1.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE
from repro.mem.tiers import FASTEST_TIER
from repro.policies.base import PolicyContext, TieringPolicy, Traits


class NimblePolicy(TieringPolicy):
    """Full page-table scan; promote everything referenced last interval."""

    name = "nimble"
    traits = Traits(
        mechanism="PT scanning",
        subpage_tracking=False,
        promotion_metric="recency",
        demotion_metric="recency",
        threshold_criteria="static access count",
        critical_path_migration="none",
        page_size_handling="none",
    )

    def __init__(
        self,
        scan_period_ns: float = 120e6,
        scan_ns_per_page: float = 12.0,
        exchange_budget_fraction: float = 0.5,
    ):
        super().__init__()
        self.scan_period_ns = scan_period_ns
        self.scan_ns_per_page = scan_ns_per_page
        self.exchange_budget_fraction = exchange_budget_fraction
        self._next_scan_ns = 0.0
        self._scan_cpu_ns = 0.0
        self.promotions = 0
        self.demotions = 0

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)

    def on_tick(self, now_ns: float) -> None:
        if now_ns < self._next_scan_ns:
            return
        self._next_scan_ns = now_ns + self.scan_period_ns
        space = self.ctx.space
        mapped = space.page_tier >= 0
        num_mapped = int(np.count_nonzero(mapped))
        # Full page-table scan cost (kernel thread, grows with footprint).
        self._scan_cpu_ns += num_mapped * self.scan_ns_per_page

        referenced = space.ref_bit & mapped
        hot_cap = np.flatnonzero(referenced & (space.page_tier > FASTEST_TIER))
        cold_fast = np.flatnonzero(
            mapped & ~space.ref_bit & (space.page_tier == FASTEST_TIER)
        )
        # Deduplicate to page representatives (huge page heads).  The
        # promotion order is arbitrary (LRU-list order in the original);
        # shuffle so no address range is systematically favoured.
        hot_cap = self.ctx.rng.permutation(self._page_reps(hot_cap))
        cold_fast = self._page_reps(cold_fast)

        # Exchange-based migration: promote hot capacity pages, demoting
        # cold fast pages to make room.  Budget caps one interval's churn.
        budget = int(
            self.ctx.tiers.fast.capacity_bytes * self.exchange_budget_fraction
        )
        migrator = self.ctx.migrator
        cold_iter = iter(cold_fast.tolist())
        for vpn in hot_cap.tolist():
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            if budget < nbytes:
                break
            while not self.ctx.tiers.fast.can_alloc(nbytes):
                victim = next(cold_iter, None)
                if victim is None:
                    break
                if space.page_tier[victim] != FASTEST_TIER:
                    continue
                migrator.migrate_page(victim, self.demote_target(), critical=False)
                self.demotions += 1
            if not self.ctx.tiers.fast.can_alloc(nbytes):
                break
            migrator.migrate_page(vpn, FASTEST_TIER, critical=False)
            self.promotions += 1
            budget -= nbytes

        # Harvest: clear reference bits for the next interval.
        space.ref_bit[mapped] = False

    def _page_reps(self, vpns: np.ndarray) -> np.ndarray:
        space = self.ctx.space
        if len(vpns) == 0:
            return vpns
        heads = np.where(space.page_huge[vpns], (vpns >> 9) << 9, vpns)
        return np.unique(heads)

    def on_batch(self, obs) -> float:
        # The scanning thread competes for CPU on a saturated machine;
        # amortise accumulated scan time into the runtime.
        ns, self._scan_cpu_ns = self._scan_cpu_ns, 0.0
        return ns / max(1, self.ctx.machine.cores)

    def stats(self) -> Dict[str, float]:
        return {
            "promotions": float(self.promotions),
            "demotions": float(self.demotions),
        }
