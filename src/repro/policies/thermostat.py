"""Thermostat (ASPLOS'17) baseline -- cited in the paper's §7.

"Thermostat precisely detects the access frequency of huge pages using
page faults, which incur significant tracking overhead."  Mechanism:
each interval a random *sample* of huge pages is poisoned (all their
accesses fault); the fault rate observed during the poisoning window
estimates each sampled page's access frequency.  Pages are then
classified hot/cold against a throughput-loss budget and cold pages are
demoted to the capacity tier at huge-page granularity (Thermostat never
splits -- it predates skewness-aware sizing).

The instructive contrast with MEMTIS: the estimates are accurate, but
(1) every poisoned access pays a fault on the critical path, and (2)
placement is all-or-nothing per 2 MiB page.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mem.pages import HUGE_PAGE_SIZE, SUBPAGES_PER_HUGE
from repro.mem.tiers import FASTEST_TIER
from repro.policies.base import PolicyContext, TieringPolicy, Traits


class ThermostatPolicy(TieringPolicy):
    """Poisoning-based huge-page access-rate estimation."""

    name = "thermostat"
    traits = Traits(
        mechanism="page fault (poisoning)",
        subpage_tracking=False,
        promotion_metric="estimated access rate",
        demotion_metric="estimated access rate",
        threshold_criteria="throughput-loss budget",
        critical_path_migration="none",
        page_size_handling="huge pages only",
    )

    def __init__(
        self,
        sample_fraction: float = 0.10,
        poison_period_ns: float = 20e6,
        migrate_period_ns: float = 10e6,
        cold_fraction_target: float = None,
        rate_decay: float = 0.5,
    ):
        super().__init__()
        self.sample_fraction = sample_fraction
        self.poison_period_ns = poison_period_ns
        self.migrate_period_ns = migrate_period_ns
        self.cold_fraction_target = cold_fraction_target
        self.rate_decay = rate_decay
        self._next_poison_ns = 0.0
        self._next_migrate_ns = 0.0
        self._rate = None        # EMA of faults per poisoning window, per hpn
        self._measured = None    # hpn has at least one estimate
        self._faults_window = None
        self._poisoned_hpns = np.empty(0, dtype=np.int64)
        self.poison_faults = 0

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._ensure_protection_mask()
        if self.cold_fraction_target is None:
            # Default: the capacity tier's share of total memory -- the
            # fraction of pages that *must* live there.
            total = (ctx.tiers.fast.capacity_bytes
                     + ctx.tiers.capacity.capacity_bytes)
            self.cold_fraction_target = ctx.tiers.capacity.capacity_bytes / total
        num_hpns = ctx.space.num_hpns
        self._rate = np.zeros(num_hpns, dtype=np.float64)
        self._measured = np.zeros(num_hpns, dtype=bool)
        self._faults_window = np.zeros(num_hpns, dtype=np.int64)

    # -- poisoning cycle -----------------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns >= self._next_poison_ns:
            self._next_poison_ns = now_ns + self.poison_period_ns
            self._rotate_poison_set()
        if now_ns >= self._next_migrate_ns:
            self._next_migrate_ns = now_ns + self.migrate_period_ns
            self._migrate()

    def _rotate_poison_set(self) -> None:
        """Fold the window's fault counts in; poison a fresh sample."""
        space = self.ctx.space
        if len(self._poisoned_hpns):
            heads = self._poisoned_hpns << 9
            for hpn, head in zip(self._poisoned_hpns.tolist(), heads.tolist()):
                self.protection_mask[head : head + SUBPAGES_PER_HUGE] = False
                self._rate[hpn] = (
                    self.rate_decay * self._faults_window[hpn]
                    + (1 - self.rate_decay) * self._rate[hpn]
                )
                self._measured[hpn] = True
            self._faults_window[self._poisoned_hpns] = 0

        hpns = space.mapped_huge_hpns()
        if len(hpns) == 0:
            self._poisoned_hpns = np.empty(0, dtype=np.int64)
            return
        take = max(1, int(len(hpns) * self.sample_fraction))
        self._poisoned_hpns = self.ctx.rng.choice(hpns, size=take, replace=False)
        for head in (self._poisoned_hpns << 9).tolist():
            self.protection_mask[head : head + SUBPAGES_PER_HUGE] = True

    def on_hint_faults(self, vpns: np.ndarray) -> float:
        """Poisoned-page faults: record the access, keep the poison armed.

        Unlike NUMA-hint faults, Thermostat's poisoning keeps counting
        for the whole window, so every access to a sampled page faults --
        the "significant tracking overhead" the paper criticises.
        """
        hpns = vpns >> 9
        np.add.at(self._faults_window, hpns, 1)
        self.poison_faults += len(vpns)
        return 0.0  # classification is offline; the fault cost itself is
        # already charged by the engine per faulting access

    # -- placement ---------------------------------------------------------------

    def _migrate(self) -> None:
        space = self.ctx.space
        tiers = self.ctx.tiers
        hpns = space.mapped_huge_hpns()
        measured = hpns[self._measured[hpns]]
        if len(measured) == 0:
            return
        # Cold = no faults observed while poisoned (genuinely idle);
        # the cold-fraction target caps how much DRAM may be vacated per
        # round, mirroring Thermostat's throughput-loss budget.
        rates = self._rate[measured]
        idle = measured[rates < 1.0]
        hot_order = np.argsort(-rates)
        hot_list = measured[hot_order][rates[hot_order] >= 1.0].tolist()
        budget = int(len(measured) * self.cold_fraction_target)
        cold_list = idle[:budget].tolist()
        migrator = self.ctx.migrator
        # Demote classified-cold pages out of DRAM first...
        for hpn in cold_list:
            if space.page_tier[hpn << 9] == FASTEST_TIER:
                migrator.migrate_huge(hpn, self.demote_target(), critical=False)
        # ...then pull classified-hot pages in while room remains.
        for hpn in hot_list:
            if space.page_tier[hpn << 9] <= FASTEST_TIER:
                continue
            if not tiers.fast.can_alloc(HUGE_PAGE_SIZE):
                break
            migrator.migrate_huge(hpn, FASTEST_TIER, critical=False)

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self.protection_mask is not None:
            self.protection_mask[base_vpn : base_vpn + num_vpns] = False
        if self._rate is not None:
            lo = base_vpn >> 9
            hi = (base_vpn + num_vpns + SUBPAGES_PER_HUGE - 1) >> 9
            self._rate[lo:hi] = 0.0
            self._measured[lo:hi] = False
            self._faults_window[lo:hi] = 0

    def stats(self) -> Dict[str, float]:
        return {
            "poison_faults": float(self.poison_faults),
            "measured_hpns": float(int(self._measured.sum())),
        }
