"""Policy interface: what a tiering system can see and do.

A policy never reads the raw access trace.  It observes:

* **PEBS samples** (``uses_pebs = True``): the engine runs a
  :class:`repro.pebs.sampler.PEBSSampler` and attaches the sampled
  records to each observation;
* **hint faults**: the policy marks pages in ``protection_mask``; when
  the application touches a protected page, the engine charges the
  fault cost into the runtime and calls :meth:`on_hint_faults` -- the
  handler may migrate on the spot (returning critical-path ns), which
  is precisely the fault-path promotion the paper criticises (§2.2);
* **reference bits**: ``ctx.space.ref_bit`` is set by the engine for
  touched pages; scanning policies read-and-clear it during
  :meth:`on_tick` and pay a modelled scan cost.

All mutation goes through ``ctx.migrator`` so traffic and latency are
accounted uniformly.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.mem.address_space import AddressSpace
from repro.mem.migration import MigrationEngine
from repro.mem.tiers import FASTEST_TIER, TieredMemory, TierIndex
from repro.mem.tlb import TLB
from repro.obs import NULL_TRACER, Observability
from repro.pebs.events import AccessBatch
from repro.pebs.sampler import PEBSSampler, SampleBatch


def scaled_headroom(capacity_bytes: int, fraction: float) -> int:
    """Free-space target with a scale floor.

    At paper scale a 2% headroom on a multi-GB fast tier is tens of huge
    pages; at simulation scale 2% of a small DRAM can round to less than
    one huge page, deadlocking promotion and starving short-lived
    allocations.  The floor keeps the headroom at least a couple of huge
    pages (capped at 15% of DRAM for tiny configurations).
    """
    floor = min(2 * 1024 * 1024, int(capacity_bytes * 0.15))
    return max(int(capacity_bytes * fraction), floor)


@dataclass(frozen=True)
class Traits:
    """Qualitative traits of a policy: one row of the paper's Table 1."""

    mechanism: str
    subpage_tracking: bool
    promotion_metric: str
    demotion_metric: str
    threshold_criteria: str
    critical_path_migration: str
    page_size_handling: str


@dataclass
class PolicyContext:
    """Everything a bound policy may touch."""

    space: AddressSpace
    tiers: TieredMemory
    migrator: MigrationEngine
    tlb: TLB
    machine: "object"  # MachineSpec; typed loosely to avoid a sim import cycle
    rng: np.random.Generator
    sampler: Optional[PEBSSampler] = None
    hint_fault_ns: float = 1_800.0
    #: Per-run observability: tracer (disabled by default) + counter
    #: registry; the engine shares one across every bound component.
    obs: Observability = field(default_factory=Observability)


@dataclass
class BatchObservation:
    """Per-batch information the engine hands to a policy.

    ``unique_vpns``/``counts`` are computed lazily via :meth:`unique`:
    sample-based policies never look at them, so the engine no longer
    pays an unconditional ``np.unique`` per batch.  Constructing with
    explicit arrays (as some tests do) still works and skips the
    deferred computation.
    """

    batch: AccessBatch
    samples: Optional[SampleBatch] = None
    now_ns: float = 0.0
    batch_wall_ns: float = 0.0
    unique_vpns: Optional[np.ndarray] = None
    counts: Optional[np.ndarray] = None

    def unique(self) -> "tuple[np.ndarray, np.ndarray]":
        """Unique accessed vpns and their access counts (cached)."""
        if self.unique_vpns is None:
            self.unique_vpns, self.counts = np.unique(
                self.batch.vpn, return_counts=True
            )
        return self.unique_vpns, self.counts


class TieringPolicy(abc.ABC):
    """Base class for all tiering systems."""

    #: Registry / display name; subclasses override.
    name: str = "abstract"
    #: Table 1 row; subclasses override.
    traits: Traits = Traits(
        mechanism="-",
        subpage_tracking=False,
        promotion_metric="-",
        demotion_metric="-",
        threshold_criteria="-",
        critical_path_migration="-",
        page_size_handling="-",
    )
    #: When True the engine attaches PEBS samples to observations.
    uses_pebs: bool = False

    def __init__(self):
        self.ctx: Optional[PolicyContext] = None
        #: Optional per-vpn protection mask for hint-fault tracking.
        self.protection_mask: Optional[np.ndarray] = None
        #: Bound at :meth:`bind`; usable unbound so tests constructing
        #: policies without an engine keep working.
        self.tracer = NULL_TRACER
        self.counters = None

    # -- lifecycle -----------------------------------------------------------

    def bind(self, ctx: PolicyContext) -> None:
        """Attach to a machine.  Subclasses should call super().bind()."""
        self.ctx = ctx
        self.tracer = ctx.obs.tracer
        self.counters = ctx.obs.counters.scope(f"policy/{self.name}")
        ctx.space.add_unmap_listener(self.on_unmap)

    def sampler_config(self):
        """Sampler configuration for ``uses_pebs`` policies (or None)."""
        return None

    # -- allocation placement --------------------------------------------------

    def choose_alloc_tier(self, nbytes: int) -> TierIndex:
        """Preferred tier index for a fresh allocation (fastest-first by
        default).

        The preference is stated once per region; the address space
        still applies *per-chunk* fallback through the slower tiers, so
        a large region fills the remaining fast-tier space first and
        spills downward -- the Linux local-node-first allocation
        behaviour.
        """
        return FASTEST_TIER

    def on_region_alloc(self, region) -> None:
        """A region was allocated and mapped (policy may pin/track it)."""

    # -- observation hooks -------------------------------------------------------

    def on_batch(self, obs: BatchObservation) -> float:
        """Observe one batch; return extra critical-path ns (default 0)."""
        return 0.0

    def on_hint_faults(self, vpns: np.ndarray) -> float:
        """Handle hint faults on protected pages; return critical ns."""
        return 0.0

    def on_tick(self, now_ns: float) -> None:
        """Background daemon hook, called once per batch with sim time."""

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        """A virtual range was freed; clear any per-page policy state."""

    def on_demand_map(self, vpns: np.ndarray) -> None:
        """Base pages were demand-mapped on first touch after a split
        freed them; policies tracking per-page state may seed it here."""

    # -- reporting ----------------------------------------------------------------

    def cpu_contention_factor(self) -> float:
        """Runtime multiplier for service threads competing with the app.

        The default policy costs nothing; HeMem's always-on sampling
        thread returns > 1 when the application saturates all cores
        (§6.2.1 "high CPU usage (~100%) of the sampling thread").
        """
        return 1.0

    def stats(self) -> Dict[str, float]:
        """Policy-specific snapshot merged into timeline points.

        Default: whatever the policy registered into its scoped counter
        registry (``policy/<name>/...``) -- the structured replacement
        for hand-rolled stat dicts.  Policies with derived or legacy
        metrics still override.
        """
        if self.counters is None:
            return {}
        return self.counters.flat()

    # -- checkpoint support ---------------------------------------------------

    #: Instance attributes never captured by the generic state walk:
    #: live wiring (re-established by ``bind``) and the mask, which gets
    #: explicit handling so its None-ness round-trips.
    _STATE_EXCLUDED = frozenset({"ctx", "tracer", "counters", "protection_mask"})

    @staticmethod
    def _is_plain_state(value: Any) -> bool:
        """True for plain-data values safe to checkpoint generically."""
        if value is None or isinstance(
            value, (bool, int, float, str, np.ndarray, np.generic)
        ):
            return True
        if isinstance(value, (list, tuple, set, frozenset)):
            return all(TieringPolicy._is_plain_state(v) for v in value)
        if isinstance(value, dict):
            return all(
                TieringPolicy._is_plain_state(k) and TieringPolicy._is_plain_state(v)
                for k, v in value.items()
            )
        return False

    def state_dict(self) -> Dict[str, Any]:
        """Serialisable mutable policy state (epoch checkpoints).

        The base implementation captures the protection mask plus every
        plain-data instance attribute -- ints, floats, strings, numpy
        arrays and containers of those -- which covers scan-based
        policies whose state is per-page arrays and scalar cursors.
        Frozen configs and bound sub-objects are skipped; policies
        composed of stateful daemons (MEMTIS) extend this.
        """
        attrs: Dict[str, Any] = {}
        for key, value in vars(self).items():
            if key in self._STATE_EXCLUDED:
                continue
            if isinstance(value, np.ndarray):
                attrs[key] = value.copy()
            elif self._is_plain_state(value):
                attrs[key] = copy.deepcopy(value)
        return {
            "protection_mask": (
                None if self.protection_mask is None
                else self.protection_mask.copy()
            ),
            "attrs": attrs,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        mask = state.get("protection_mask")
        self.protection_mask = (
            None if mask is None else np.array(mask, dtype=bool)
        )
        for key, value in state.get("attrs", {}).items():
            if isinstance(value, np.ndarray):
                setattr(self, key, value.copy())
            else:
                setattr(self, key, copy.deepcopy(value))

    # -- helpers shared by subclasses ----------------------------------------------

    def _ensure_protection_mask(self) -> np.ndarray:
        if self.protection_mask is None:
            self.protection_mask = np.zeros(self.ctx.space.num_vpns, dtype=bool)
        return self.protection_mask

    def fast_free_fraction(self) -> float:
        fast = self.ctx.tiers.fast
        return fast.free_bytes / fast.capacity_bytes

    def demote_target(self) -> int:
        """Tier index demotions from the fastest tier land on.

        One step below the fastest tier (tier 1 on every machine with at
        least two tiers); deeper overflow is handled by the migration
        engine's demotion cascade, so policies stay two-tier-shaped even
        on N-tier machines.
        """
        target = self.ctx.tiers.demote_target(FASTEST_TIER)
        return FASTEST_TIER if target is None else target

    def headroom_bytes(self, fraction: float) -> int:
        """Scale-floored free-space target (see :func:`scaled_headroom`)."""
        return scaled_headroom(self.ctx.tiers.fast.capacity_bytes, fraction)

    def page_rep_vpn(self, vpn: int) -> int:
        """Representative vpn of the mapping covering ``vpn``.

        For a huge mapping this is the 2 MiB-aligned head, so sets of
        representative vpns deduplicate subpage events onto pages.
        """
        if self.ctx.space.page_huge[vpn]:
            return (vpn >> 9) << 9
        return vpn
