"""TierBPF-style admission-controlled promotion (arXiv:2604.12300).

The system's thesis: most tiering designs promote *every* page that
crosses a hotness bar, but a promotion only pays off when the page stays
hot long enough for the saved access latency to amortise the migration
cost.  TierBPF therefore gates promotions behind an **admission filter**
-- a predicted-benefit test plus a token-bucket migration budget --
implemented as a small BPF program in the kernel's promotion path.

The model here:

* PEBS sample counts per page (HeMem-style recency+frequency window).
* **Benefit prediction**: a candidate's sampled count, multiplied by the
  sampling period, estimates its accesses over the last window; each
  access saved earns the machine's fast/slow latency gap.  The candidate
  is admitted only when that predicted saving exceeds the modeled
  migration cost times a safety margin.
* **Token budget**: admitted promotions spend bytes from a bucket
  refilled at ``budget_bytes_per_sec`` of simulated time, bounding
  migration bandwidth regardless of how many pages qualify.

Preserved defect (the paper's own evaluation, §5): the predictor is a
*backward-looking* window.  A page that just became hot has a small
count, predicts a small benefit, and is rejected -- exactly while
serving its heaviest traffic from the slow tier.  Under phased
workloads, admission misprediction plus budget starvation turns into a
measurable throughput loss versus an unconditional promoter; the
``rejected_benefit``/``rejected_budget`` stats make the loss visible.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE
from repro.mem.tiers import FASTEST_TIER
from repro.pebs.sampler import SamplerConfig
from repro.policies.base import BatchObservation, PolicyContext, TieringPolicy, Traits


class TierBPFPolicy(TieringPolicy):
    """PEBS counts behind a benefit-predicted, token-budgeted admission gate."""

    name = "tierbpf"
    uses_pebs = True
    traits = Traits(
        mechanism="HW-based sampling",
        subpage_tracking=False,
        promotion_metric="predicted benefit / cost",
        demotion_metric="recency + frequency",
        threshold_criteria="admission filter + token budget",
        critical_path_migration="none",
        page_size_handling="none",
    )

    def __init__(
        self,
        hot_threshold: int = 4,
        cooling_threshold: int = 32,
        benefit_margin: float = 2.0,
        budget_bytes_per_sec: float = 256e6,
        migrate_period_ns: float = 100e6,
        free_headroom: float = 0.02,
    ):
        super().__init__()
        self.hot_threshold = hot_threshold
        self.cooling_threshold = cooling_threshold
        self.benefit_margin = benefit_margin
        self.budget_bytes_per_sec = budget_bytes_per_sec
        self.migrate_period_ns = migrate_period_ns
        self.free_headroom = free_headroom
        self._count = None
        self._candidates: Set[int] = set()
        self._next_migrate_ns = 0.0
        self._last_refill_ns = 0.0
        self._tokens = 0.0
        self.admitted = 0
        self.rejected_benefit = 0
        self.rejected_budget = 0
        self.demotions = 0
        self.coolings = 0

    def sampler_config(self) -> SamplerConfig:
        return SamplerConfig(load_period=200, store_period=100_000)

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._count = np.zeros(ctx.space.num_vpns, dtype=np.int32)
        # Start with one refill period of tokens so the first migration
        # tick is not trivially starved.
        self._tokens = self.budget_bytes_per_sec * self.migrate_period_ns / 1e9

    # -- admission filter ------------------------------------------------------

    def _predicted_benefit_ns(self, vpn: int) -> float:
        """Latency saved over the next window if ``vpn`` moved to DRAM.

        Each PEBS sample stands for ``load_period`` real accesses; a
        promoted page saves the fast/slow latency gap on each.  The
        window count is the backward-looking estimate of the forward
        rate -- the source of the misprediction defect.
        """
        period = self.ctx.sampler.config.load_period if self.ctx.sampler else 200
        est_accesses = float(self._count[vpn]) * period
        return est_accesses * self.ctx.tiers.latency_gap

    def _migration_cost_ns(self, nbytes: int) -> float:
        params = self.ctx.migrator.params
        return (
            params.per_page_fixed_ns
            + params.copy_ns(nbytes)
            + params.shootdown_ns
        )

    # -- sample processing -----------------------------------------------------

    def on_batch(self, obs: BatchObservation) -> float:
        samples = obs.samples
        if samples is None or len(samples) == 0:
            return 0.0
        space = self.ctx.space
        vpns = samples.vpn
        heads = np.where(space.page_huge[vpns], (vpns >> 9) << 9, vpns)
        np.add.at(self._count, heads, 1)
        hot = heads[self._count[heads] >= self.hot_threshold]
        for vpn in np.unique(hot).tolist():
            if space.page_tier[vpn] > FASTEST_TIER:
                self._candidates.add(int(vpn))
        if len(heads) and int(self._count[heads].max()) >= self.cooling_threshold:
            self._count >>= 1
            self.coolings += 1
        return 0.0

    # -- background migration --------------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        # The token bucket refills with simulated time even between
        # migration ticks so budget accrues at the configured rate.
        if now_ns > self._last_refill_ns:
            self._tokens = min(
                self._tokens
                + (now_ns - self._last_refill_ns) / 1e9 * self.budget_bytes_per_sec,
                # Cap at one second of budget: idle time cannot bank an
                # unbounded burst.
                self.budget_bytes_per_sec,
            )
            self._last_refill_ns = now_ns
        if now_ns < self._next_migrate_ns:
            return
        self._next_migrate_ns = now_ns + self.migrate_period_ns
        space = self.ctx.space
        tiers = self.ctx.tiers
        migrator = self.ctx.migrator

        for vpn in sorted(self._candidates):
            if space.page_tier[vpn] <= FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            benefit = self._predicted_benefit_ns(vpn)
            cost = self._migration_cost_ns(nbytes)
            if benefit < cost * self.benefit_margin:
                self.rejected_benefit += 1
                continue
            if self._tokens < nbytes:
                self.rejected_budget += 1
                continue
            if not tiers.fast.can_alloc(nbytes):
                self._demote_cold(nbytes)
            if not tiers.fast.can_alloc(nbytes):
                break
            migrator.migrate_page(vpn, FASTEST_TIER, critical=False)
            self._tokens -= nbytes
            self.admitted += 1
        self._candidates.clear()

        headroom = self.headroom_bytes(self.free_headroom)
        if tiers.fast.free_bytes < headroom:
            self._demote_cold(headroom - tiers.fast.free_bytes)

    def _demote_cold(self, nbytes_needed: int) -> None:
        """Demote the coldest fast-tier pages (demotions are not gated:
        the admission filter protects the *promotion* path only)."""
        space = self.ctx.space
        fast = np.flatnonzero(space.page_tier == FASTEST_TIER)
        if len(fast) == 0:
            return
        heads = np.unique(np.where(space.page_huge[fast], (fast >> 9) << 9, fast))
        order = np.argsort(self._count[heads], kind="stable")
        freed = 0
        for vpn in heads[order].tolist():
            if freed >= nbytes_needed:
                break
            if space.page_tier[vpn] != FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            self.ctx.migrator.migrate_page(vpn, self.demote_target(), critical=False)
            self.demotions += 1
            freed += nbytes

    # -- bookkeeping -----------------------------------------------------------

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self._count is not None:
            self._count[base_vpn : base_vpn + num_vpns] = 0
        self._candidates = {
            v for v in self._candidates if not base_vpn <= v < base_vpn + num_vpns
        }

    def stats(self) -> Dict[str, float]:
        return {
            "admitted": float(self.admitted),
            "rejected_benefit": float(self.rejected_benefit),
            "rejected_budget": float(self.rejected_budget),
            "demotions": float(self.demotions),
            "coolings": float(self.coolings),
            "budget_tokens": float(self._tokens),
        }
