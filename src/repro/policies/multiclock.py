"""MULTI-CLOCK (HPCA'22) baseline.

Table 1 row: page-table scanning, recency+frequency promotion (extended
CLOCK: referenced in two consecutive scans), recency demotion, static
access-count threshold (two), migrations off the critical path.

Mechanism: two CLOCK lists (one per tier).  Each scan harvests and
clears reference bits; a capacity-tier page referenced in two
consecutive scans is promoted, and fast-tier pages whose hands find the
reference bit clear are demoted under memory pressure.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE
from repro.mem.tiers import FASTEST_TIER
from repro.policies.base import PolicyContext, TieringPolicy, Traits


class MultiClockPolicy(TieringPolicy):
    """Per-tier CLOCK lists; promote on two consecutive referenced scans."""

    name = "multi-clock"
    traits = Traits(
        mechanism="PT scanning",
        subpage_tracking=False,
        promotion_metric="recency + frequency",
        demotion_metric="recency",
        threshold_criteria="static access count",
        critical_path_migration="none",
        page_size_handling="none",
    )

    PROMOTION_STREAK = 2

    def __init__(
        self,
        scan_period_ns: float = 120e6,
        scan_ns_per_page: float = 12.0,
        free_watermark: float = 0.02,
    ):
        super().__init__()
        self.scan_period_ns = scan_period_ns
        self.scan_ns_per_page = scan_ns_per_page
        self.free_watermark = free_watermark
        self._next_scan_ns = 0.0
        self._streak = None  # consecutive referenced scans per vpn
        self._scan_cpu_ns = 0.0
        self.promotions = 0
        self.demotions = 0

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._streak = np.zeros(ctx.space.num_vpns, dtype=np.uint8)

    def on_tick(self, now_ns: float) -> None:
        if now_ns < self._next_scan_ns:
            return
        self._next_scan_ns = now_ns + self.scan_period_ns
        space = self.ctx.space
        mapped = space.page_tier >= 0
        self._scan_cpu_ns += int(np.count_nonzero(mapped)) * self.scan_ns_per_page

        referenced = space.ref_bit & mapped
        self._streak[referenced] = np.minimum(self._streak[referenced] + 1, 8)
        self._streak[mapped & ~referenced] = 0

        # Promotion: streak >= 2 on the capacity tier.
        hot = np.flatnonzero(
            (self._streak >= self.PROMOTION_STREAK)
            & (space.page_tier > FASTEST_TIER)
        )
        hot = self._page_reps(hot)
        migrator = self.ctx.migrator
        for vpn in hot.tolist():
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            if not self.ctx.tiers.fast.can_alloc(nbytes):
                self._demote_for_space(nbytes)
            if not self.ctx.tiers.fast.can_alloc(nbytes):
                break
            migrator.migrate_page(vpn, FASTEST_TIER, critical=False)
            self.promotions += 1
        self._demote_watermark()
        space.ref_bit[mapped] = False

    def _page_reps(self, vpns: np.ndarray) -> np.ndarray:
        space = self.ctx.space
        if len(vpns) == 0:
            return vpns
        heads = np.where(space.page_huge[vpns], (vpns >> 9) << 9, vpns)
        return np.unique(heads)

    def _demotion_candidates(self) -> np.ndarray:
        space = self.ctx.space
        cold_fast = np.flatnonzero(
            (space.page_tier == FASTEST_TIER) & (self._streak == 0)
        )
        return self._page_reps(cold_fast)

    def _demote_for_space(self, nbytes_needed: int) -> None:
        space = self.ctx.space
        freed = 0
        for vpn in self._demotion_candidates().tolist():
            if freed >= nbytes_needed:
                break
            if space.page_tier[vpn] != FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            self.ctx.migrator.migrate_page(vpn, self.demote_target(), critical=False)
            self.demotions += 1
            freed += nbytes

    def _demote_watermark(self) -> None:
        tiers = self.ctx.tiers
        target = self.headroom_bytes(self.free_watermark)
        if tiers.fast.free_bytes < target:
            self._demote_for_space(target - tiers.fast.free_bytes)

    def on_batch(self, obs) -> float:
        ns, self._scan_cpu_ns = self._scan_cpu_ns, 0.0
        return ns / max(1, self.ctx.machine.cores)

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self._streak is not None:
            self._streak[base_vpn : base_vpn + num_vpns] = 0

    def stats(self) -> Dict[str, float]:
        return {
            "promotions": float(self.promotions),
            "demotions": float(self.demotions),
        }
