"""Static reference configurations: no tiering decisions at all.

``AllCapacityPolicy`` pins everything to the slowest tier; run on an
all-capacity machine it is the paper's normalisation baseline ("all-NVM
case with THP enabled", §6.1).  ``AllFastPolicy`` pins everything to
DRAM; run on an all-fast machine it is Fig. 7's "All-DRAM" reference.
"""

from __future__ import annotations

from repro.mem.tiers import FASTEST_TIER, TierIndex
from repro.policies.base import TieringPolicy, Traits


class AllCapacityPolicy(TieringPolicy):
    """Place and keep every page on the slowest (capacity) tier."""

    name = "all-capacity"
    traits = Traits(
        mechanism="none",
        subpage_tracking=False,
        promotion_metric="-",
        demotion_metric="-",
        threshold_criteria="-",
        critical_path_migration="none",
        page_size_handling="THP default",
    )

    def choose_alloc_tier(self, nbytes: int) -> TierIndex:
        return self.ctx.tiers.slowest_index


class AllFastPolicy(TieringPolicy):
    """Place and keep every page on the fast tier."""

    name = "all-fast"
    traits = Traits(
        mechanism="none",
        subpage_tracking=False,
        promotion_metric="-",
        demotion_metric="-",
        threshold_criteria="-",
        critical_path_migration="none",
        page_size_handling="THP default",
    )

    def choose_alloc_tier(self, nbytes: int) -> TierIndex:
        return FASTEST_TIER
