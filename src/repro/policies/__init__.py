"""Tiering policies: the six baselines from the paper plus helpers.

Every policy implements :class:`repro.policies.base.TieringPolicy` and
observes the access stream only through its real-world mechanism:

* page-fault (NUMA-hint) tracking: AutoNUMA, AutoTiering, Tiering-0.8,
  TPP -- these also migrate on the critical path, as Table 1 notes;
* page-table (reference-bit) scanning: Nimble, MULTI-CLOCK;
* hardware sampling (PEBS): HeMem (static thresholds) and MEMTIS
  (:mod:`repro.core`).

`repro.policies.damon` implements the DAMON region monitor used by the
paper's Fig. 1 accuracy/overhead analysis, and `repro.policies.static`
provides the all-fast / all-capacity reference configurations used for
normalisation.
"""

from repro.policies.base import (
    BatchObservation,
    PolicyContext,
    TieringPolicy,
    Traits,
)
from repro.policies.static import AllCapacityPolicy, AllFastPolicy
from repro.policies.autonuma import AutoNUMAPolicy
from repro.policies.autotiering import AutoTieringPolicy
from repro.policies.tiering08 import Tiering08Policy
from repro.policies.tpp import TPPPolicy
from repro.policies.nimble import NimblePolicy
from repro.policies.multiclock import MultiClockPolicy
from repro.policies.hemem import HeMemPolicy
from repro.policies.tmts import TMTSPolicy
from repro.policies.registry import POLICY_REGISTRY, make_policy, policy_names

__all__ = [
    "BatchObservation",
    "PolicyContext",
    "TieringPolicy",
    "Traits",
    "AllCapacityPolicy",
    "AllFastPolicy",
    "AutoNUMAPolicy",
    "AutoTieringPolicy",
    "Tiering08Policy",
    "TPPPolicy",
    "NimblePolicy",
    "MultiClockPolicy",
    "HeMemPolicy",
    "TMTSPolicy",
    "POLICY_REGISTRY",
    "make_policy",
    "policy_names",
]
