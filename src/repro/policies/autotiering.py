"""AutoTiering (ATC'21) baseline.

Table 1 row: page-fault tracking, recency promotion, frequency (LFU)
demotion, static promotion threshold + LFU demotion selection, promotion
on the critical path.

Mechanism: NUMA-hint faults drive *opportunistic promotion with
exchange*: a faulting capacity-tier page is promoted immediately; if the
fast tier is full, it is exchanged with the fast-tier page that has the
lowest N-bit access-history value (LFU victim).  A background demotion
thread keeps a small free reserve on the fast tier, but that reserve is
used **only for promotions** -- fresh allocations are directed to the
capacity tier once DRAM passes its watermark, which is why short-lived
allocations (603.bwaves) land on slow memory (§6.2.6).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE, SUBPAGES_PER_HUGE
from repro.mem.tiers import FASTEST_TIER, TierIndex
from repro.policies.base import PolicyContext, TieringPolicy, Traits


class AutoTieringPolicy(TieringPolicy):
    """Hint-fault promotion with LFU exchange and reserved headroom."""

    name = "autotiering"
    traits = Traits(
        mechanism="page fault",
        subpage_tracking=False,
        promotion_metric="recency",
        demotion_metric="frequency",
        threshold_criteria="static count (promo) / LFU (demo)",
        critical_path_migration="promotion",
        page_size_handling="none",
    )

    HISTORY_BITS = 8

    def __init__(
        self,
        scan_period_ns: float = 12e6,
        scan_fraction: float = 0.15,
        reserve_fraction: float = 0.04,
        alloc_watermark: float = 0.10,
        exchange_budget_bytes: int = 1024 * 1024,
    ):
        super().__init__()
        self.scan_period_ns = scan_period_ns
        self.scan_fraction = scan_fraction
        self.reserve_fraction = reserve_fraction
        self.alloc_watermark = alloc_watermark
        self.exchange_budget_bytes = exchange_budget_bytes
        self._next_scan_ns = 0.0
        self._scan_cursor = 0
        self._history = None  # per-vpn N-bit access history (uint8)
        self._exchange_budget_left = exchange_budget_bytes
        self.exchanges = 0
        self.promotions = 0

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._ensure_protection_mask()
        self._history = np.zeros(ctx.space.num_vpns, dtype=np.uint8)

    def choose_alloc_tier(self, nbytes: int) -> TierIndex:
        # Reserved fast-tier pages serve promotions only: new data goes to
        # the next-slower tier once DRAM is below the allocation watermark.
        if self.fast_free_fraction() > self.alloc_watermark:
            return FASTEST_TIER
        return self.demote_target()

    # -- scanner: protect a window and age histories -----------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns < self._next_scan_ns:
            return
        self._next_scan_ns = now_ns + self.scan_period_ns
        space = self.ctx.space
        mapped_vpns = np.flatnonzero(space.page_tier >= 0)
        if len(mapped_vpns) == 0:
            return
        # Age every history vector (shift in a zero for this interval)
        # and refill the per-interval exchange budget.
        np.right_shift(self._history, 1, out=self._history)
        self._exchange_budget_left = self.exchange_budget_bytes
        window = max(SUBPAGES_PER_HUGE, int(len(mapped_vpns) * self.scan_fraction))
        start = self._scan_cursor % len(mapped_vpns)
        take = mapped_vpns[start : start + window]
        if len(take) < window:
            take = np.concatenate([take, mapped_vpns[: window - len(take)]])
        self._scan_cursor = (start + window) % len(mapped_vpns)
        self.protection_mask[take] = True
        self._background_demote()

    def _background_demote(self) -> None:
        """Keep a promotion reserve free by demoting LFU-coldest pages."""
        tiers = self.ctx.tiers
        target_free = self.headroom_bytes(self.reserve_fraction)
        if tiers.fast.free_bytes >= target_free:
            return
        space = self.ctx.space
        fast_vpns = np.flatnonzero(space.page_tier == FASTEST_TIER)
        if len(fast_vpns) == 0:
            return
        order = np.argsort(self._history[fast_vpns], kind="stable")
        need = target_free - tiers.fast.free_bytes
        for vpn in fast_vpns[order].tolist():
            if need <= 0:
                break
            if space.page_tier[vpn] != FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            self.ctx.migrator.migrate_page(vpn, self.demote_target(), critical=False)
            need -= nbytes

    # -- fault handler ---------------------------------------------------------

    def on_hint_faults(self, vpns: np.ndarray) -> float:
        space = self.ctx.space
        critical_ns = 0.0
        top_bit = np.uint8(1 << (self.HISTORY_BITS - 1))
        for vpn in vpns.tolist():
            if space.page_huge[vpn]:
                head = (vpn >> 9) << 9
                self.protection_mask[head : head + SUBPAGES_PER_HUGE] = False
                self._history[head] |= top_bit
                rep = head
            else:
                self.protection_mask[vpn] = False
                self._history[vpn] |= top_bit
                rep = vpn
            if space.page_tier[rep] <= FASTEST_TIER:
                continue  # already fastest (or unmapped)
            nbytes = HUGE_PAGE_SIZE if space.page_huge[rep] else BASE_PAGE_SIZE
            if self.ctx.tiers.fast.can_alloc(nbytes):
                critical_ns += self.ctx.migrator.migrate_page(
                    rep, FASTEST_TIER, critical=True
                )
                self.promotions += 1
            else:
                critical_ns += self._exchange(rep, nbytes)
        return critical_ns

    def _exchange(self, vpn: int, nbytes: int) -> float:
        """Swap the faulting page with the LFU-coldest fast-tier page.

        Exchanges happen on the fault path (critical); a per-interval
        byte budget keeps the induced latency bounded, as the original
        system's migration throttling does.
        """
        if self._exchange_budget_left < 2 * nbytes:
            return 0.0
        space = self.ctx.space
        fast_vpns = np.flatnonzero(space.page_tier == FASTEST_TIER)
        if len(fast_vpns) == 0:
            return 0.0
        victim = int(fast_vpns[np.argmin(self._history[fast_vpns])])
        # Never exchange with a hotter page.
        if self._history[victim] >= self._history[vpn]:
            return 0.0
        ns = self.ctx.migrator.migrate_page(victim, self.demote_target(), critical=True)
        if self.ctx.tiers.fast.can_alloc(nbytes):
            ns += self.ctx.migrator.migrate_page(vpn, FASTEST_TIER, critical=True)
            self.exchanges += 1
        self._exchange_budget_left -= 2 * nbytes
        return ns

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self.protection_mask is not None:
            self.protection_mask[base_vpn : base_vpn + num_vpns] = False
        if self._history is not None:
            self._history[base_vpn : base_vpn + num_vpns] = 0

    def stats(self) -> Dict[str, float]:
        return {
            "promotions": float(self.promotions),
            "exchanges": float(self.exchanges),
        }
