"""Tiering-0.8 (kernel patch series) baseline.

Table 1 row: page-fault tracking, recency promotion, recency demotion,
*promotion rate* thresholding, promotion on the critical path.

Mechanism: hint faults measure an approximate re-fault interval -- a
page faulted twice within the recency window is considered warm enough
to promote, throttled by a promotion-rate cap.  A kswapd-style reclaim
demotes not-recently-referenced pages to keep free space in DRAM, so
fresh (short-lived) allocations land in the fast tier -- the behaviour
that makes it competitive on 603.bwaves (§6.2.6) and the second-best
system on Silo/Btree before splitting is considered (Fig. 11).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE, SUBPAGES_PER_HUGE
from repro.mem.tiers import FASTEST_TIER
from repro.policies.base import PolicyContext, TieringPolicy, Traits


class Tiering08Policy(TieringPolicy):
    """Re-fault-interval promotion with rate throttling + reclaim demotion."""

    name = "tiering-0.8"
    traits = Traits(
        mechanism="page fault",
        subpage_tracking=False,
        promotion_metric="recency",
        demotion_metric="recency",
        threshold_criteria="promotion rate",
        critical_path_migration="promotion",
        page_size_handling="none",
    )

    def __init__(
        self,
        scan_period_ns: float = 12e6,
        scan_fraction: float = 0.15,
        refault_window_ns: float = 250e6,
        promotion_rate_bytes_per_s: float = 600 * 1024**2 * 1e3,
        free_watermark: float = 0.04,
    ):
        super().__init__()
        self.scan_period_ns = scan_period_ns
        self.scan_fraction = scan_fraction
        self.refault_window_ns = refault_window_ns
        self.promotion_rate_bytes_per_s = promotion_rate_bytes_per_s
        self.free_watermark = free_watermark
        self._next_scan_ns = 0.0
        self._scan_cursor = 0
        self._last_fault_ns = None  # per-vpn last hint-fault time
        self._now_ns = 0.0
        self._rate_window_start = 0.0
        self._rate_window_bytes = 0
        self.promotions = 0
        self.throttled = 0

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._ensure_protection_mask()
        self._last_fault_ns = np.full(ctx.space.num_vpns, -np.inf, dtype=np.float64)

    # -- scanning + reclaim ---------------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        self._now_ns = now_ns
        if now_ns < self._next_scan_ns:
            return
        self._next_scan_ns = now_ns + self.scan_period_ns
        space = self.ctx.space
        mapped_vpns = np.flatnonzero(space.page_tier >= 0)
        if len(mapped_vpns) == 0:
            return
        window = max(SUBPAGES_PER_HUGE, int(len(mapped_vpns) * self.scan_fraction))
        start = self._scan_cursor % len(mapped_vpns)
        take = mapped_vpns[start : start + window]
        if len(take) < window:
            take = np.concatenate([take, mapped_vpns[: window - len(take)]])
        self._scan_cursor = (start + window) % len(mapped_vpns)
        self.protection_mask[take] = True
        self._reclaim_demote()

    def _reclaim_demote(self) -> None:
        """kswapd: demote non-referenced fast pages below the watermark."""
        tiers = self.ctx.tiers
        target = self.headroom_bytes(self.free_watermark)
        if tiers.fast.free_bytes >= target:
            return
        space = self.ctx.space
        fast_vpns = np.flatnonzero(space.page_tier == FASTEST_TIER)
        if len(fast_vpns) == 0:
            return
        # Reclaim only scans the inactive list: non-referenced pages,
        # oldest hint-fault time first.
        inactive = fast_vpns[~space.ref_bit[fast_vpns]]
        order = np.argsort(self._last_fault_ns[inactive], kind="stable")
        need = target - tiers.fast.free_bytes
        for vpn in inactive[order].tolist():
            if need <= 0:
                break
            if space.page_tier[vpn] != FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            self.ctx.migrator.migrate_page(vpn, self.demote_target(), critical=False)
            need -= nbytes
        # Clear reference bits so the next window measures fresh recency.
        space.ref_bit[fast_vpns] = False

    # -- fault handler -----------------------------------------------------------

    def on_hint_faults(self, vpns: np.ndarray) -> float:
        space = self.ctx.space
        critical_ns = 0.0
        for vpn in vpns.tolist():
            rep = self.page_rep_vpn(vpn)
            if space.page_huge[vpn]:
                self.protection_mask[rep : rep + SUBPAGES_PER_HUGE] = False
            else:
                self.protection_mask[vpn] = False
            last = self._last_fault_ns[rep]
            self._last_fault_ns[rep] = self._now_ns
            if space.page_tier[rep] <= FASTEST_TIER:
                continue
            if self._now_ns - last > self.refault_window_ns:
                continue  # re-fault too slow: not promotion material
            nbytes = HUGE_PAGE_SIZE if space.page_huge[rep] else BASE_PAGE_SIZE
            if not self._rate_allows(nbytes):
                self.throttled += 1
                continue
            if not self.ctx.tiers.fast.can_alloc(nbytes):
                continue
            critical_ns += self.ctx.migrator.migrate_page(
                rep, FASTEST_TIER, critical=True
            )
            self.promotions += 1
        return critical_ns

    def _rate_allows(self, nbytes: int) -> bool:
        if self._now_ns - self._rate_window_start > 100e6:
            self._rate_window_start = self._now_ns
            self._rate_window_bytes = 0
        budget = self.promotion_rate_bytes_per_s * 0.1 / 1e3
        if self._rate_window_bytes + nbytes > budget:
            return False
        self._rate_window_bytes += nbytes
        return True

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self.protection_mask is not None:
            self.protection_mask[base_vpn : base_vpn + num_vpns] = False
        if self._last_fault_ns is not None:
            self._last_fault_ns[base_vpn : base_vpn + num_vpns] = -np.inf

    def stats(self) -> Dict[str, float]:
        return {
            "promotions": float(self.promotions),
            "throttled": float(self.throttled),
        }
