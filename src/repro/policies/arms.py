"""ARMS: adaptive and robust memory tiering (arXiv:2508.04417).

Two claims give the system its name:

* **Adaptive.**  Instead of a fixed hotness bar, the promotion
  threshold is re-derived each window from the sampled count
  distribution so the classified hot set tracks the fast tier's
  capacity (the same capacity-coupling MEMTIS gets from its histogram,
  computed here directly from per-page counts).
* **Robust.**  A coarse spatial histogram of each sampling window is
  compared against the previous window's via total-variation distance.
  A large drift means the workload changed phase: the stale hotness
  state is aggressively aged (quartered, queue dropped) so the new
  phase's hot set is not fought by the old one's accumulated counts.
  Promotion also requires a minimum repeat count, filtering one-shot
  streaming accesses that a single-sample bar would promote.

Preserved defect (the paper's §7 limitation): the drift detector cannot
tell *phase change* from *burstiness*.  A stationary workload with a
bursty access pattern (or a sampling window that lands on a short
burst) trips the total-variation bar, triggering a **false-positive
reset** that throws away genuine hotness state and re-learns it from
scratch -- ``phase_resets`` climbing on a stationary workload is the
defect in action.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE
from repro.mem.tiers import FASTEST_TIER
from repro.pebs.sampler import SamplerConfig
from repro.policies.base import BatchObservation, PolicyContext, TieringPolicy, Traits


class ARMSPolicy(TieringPolicy):
    """Capacity-coupled thresholds + drift-triggered state resets."""

    name = "arms"
    uses_pebs = True
    traits = Traits(
        mechanism="HW-based sampling",
        subpage_tracking=False,
        promotion_metric="frequency vs capacity threshold",
        demotion_metric="frequency vs capacity threshold",
        threshold_criteria="adaptive (capacity + drift)",
        critical_path_migration="none",
        page_size_handling="none",
    )

    #: Coarse spatial buckets for the per-window access distribution.
    DRIFT_BUCKETS = 64

    def __init__(
        self,
        min_repeat: int = 2,
        drift_threshold: float = 0.5,
        window_samples: int = 2048,
        cooling_threshold: int = 32,
        migrate_period_ns: float = 100e6,
        free_headroom: float = 0.02,
    ):
        super().__init__()
        self.min_repeat = min_repeat
        self.drift_threshold = drift_threshold
        self.window_samples = window_samples
        self.cooling_threshold = cooling_threshold
        self.migrate_period_ns = migrate_period_ns
        self.free_headroom = free_headroom
        self._count = None
        self._window_hist = np.zeros(self.DRIFT_BUCKETS, dtype=np.int64)
        self._window_seen = 0
        self._prev_dist = None
        self._hot_threshold = min_repeat
        self._candidates: Set[int] = set()
        self._next_migrate_ns = 0.0
        self.phase_resets = 0
        self.last_drift = 0.0
        self.promotions = 0
        self.demotions = 0
        self.coolings = 0

    def sampler_config(self) -> SamplerConfig:
        return SamplerConfig(load_period=200, store_period=100_000)

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._count = np.zeros(ctx.space.num_vpns, dtype=np.int32)

    # -- drift detection -------------------------------------------------------

    def _close_window(self) -> None:
        total = int(self._window_hist.sum())
        if total > 0:
            dist = self._window_hist / total
            if self._prev_dist is not None:
                # Total-variation distance between consecutive windows'
                # spatial access distributions, in [0, 1].
                drift = 0.5 * float(np.abs(dist - self._prev_dist).sum())
                self.last_drift = drift
                if drift > self.drift_threshold:
                    # Phase change (or a burst that looks like one --
                    # the false-positive defect): age hard and restart
                    # classification from the new window.
                    self._count >>= 2
                    self._candidates.clear()
                    self.phase_resets += 1
            self._prev_dist = dist
        self._window_hist = np.zeros(self.DRIFT_BUCKETS, dtype=np.int64)
        self._window_seen = 0

    def _refresh_threshold(self) -> None:
        """Pick the count bar whose hot set just fits the fast tier."""
        space = self.ctx.space
        mapped = np.flatnonzero(space.page_tier >= 0)
        if len(mapped) == 0:
            self._hot_threshold = self.min_repeat
            return
        heads = np.unique(
            np.where(space.page_huge[mapped], (mapped >> 9) << 9, mapped)
        )
        counts = self._count[heads]
        sizes = np.where(
            space.page_huge[heads], HUGE_PAGE_SIZE, BASE_PAGE_SIZE
        ).astype(np.int64)
        order = np.argsort(-counts, kind="stable")
        cum = np.cumsum(sizes[order])
        capacity = self.ctx.tiers.fast.capacity_bytes
        n_fit = int(np.searchsorted(cum, capacity, side="right"))
        if n_fit == 0 or n_fit >= len(heads):
            self._hot_threshold = self.min_repeat
            return
        # The last page that fits sets the bar; robustness keeps it at
        # least min_repeat so single samples never qualify.
        self._hot_threshold = max(int(counts[order[n_fit - 1]]), self.min_repeat)

    # -- sample processing -----------------------------------------------------

    def on_batch(self, obs: BatchObservation) -> float:
        samples = obs.samples
        if samples is None or len(samples) == 0:
            return 0.0
        space = self.ctx.space
        vpns = samples.vpn
        heads = np.where(space.page_huge[vpns], (vpns >> 9) << 9, vpns)
        np.add.at(self._count, heads, 1)
        buckets = (
            vpns.astype(np.int64) * self.DRIFT_BUCKETS // space.num_vpns
        )
        np.add.at(self._window_hist, buckets, 1)
        self._window_seen += len(vpns)
        if self._window_seen >= self.window_samples:
            self._close_window()
        hot = heads[self._count[heads] >= self._hot_threshold]
        for vpn in np.unique(hot).tolist():
            if space.page_tier[vpn] > FASTEST_TIER:
                self._candidates.add(int(vpn))
        if len(heads) and int(self._count[heads].max()) >= self.cooling_threshold:
            self._count >>= 1
            self.coolings += 1
        return 0.0

    # -- background migration --------------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns < self._next_migrate_ns:
            return
        self._next_migrate_ns = now_ns + self.migrate_period_ns
        self._refresh_threshold()
        space = self.ctx.space
        tiers = self.ctx.tiers
        migrator = self.ctx.migrator

        for vpn in sorted(self._candidates):
            if space.page_tier[vpn] <= FASTEST_TIER:
                continue
            if self._count[vpn] < self._hot_threshold:
                continue  # threshold moved since enqueue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            if not tiers.fast.can_alloc(nbytes):
                self._demote_cold(nbytes)
            if not tiers.fast.can_alloc(nbytes):
                break
            migrator.migrate_page(vpn, FASTEST_TIER, critical=False)
            self.promotions += 1
        self._candidates.clear()

        headroom = self.headroom_bytes(self.free_headroom)
        if tiers.fast.free_bytes < headroom:
            self._demote_cold(headroom - tiers.fast.free_bytes)

    def _demote_cold(self, nbytes_needed: int) -> None:
        space = self.ctx.space
        fast = np.flatnonzero(space.page_tier == FASTEST_TIER)
        if len(fast) == 0:
            return
        heads = np.unique(np.where(space.page_huge[fast], (fast >> 9) << 9, fast))
        cold = heads[self._count[heads] < self._hot_threshold]
        order = np.argsort(self._count[cold], kind="stable")
        freed = 0
        for vpn in cold[order].tolist():
            if freed >= nbytes_needed:
                break
            if space.page_tier[vpn] != FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            self.ctx.migrator.migrate_page(vpn, self.demote_target(), critical=False)
            self.demotions += 1
            freed += nbytes

    # -- bookkeeping -----------------------------------------------------------

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self._count is not None:
            self._count[base_vpn : base_vpn + num_vpns] = 0
        self._candidates = {
            v for v in self._candidates if not base_vpn <= v < base_vpn + num_vpns
        }

    def stats(self) -> Dict[str, float]:
        return {
            "promotions": float(self.promotions),
            "demotions": float(self.demotions),
            "phase_resets": float(self.phase_resets),
            "last_drift": float(self.last_drift),
            "hot_threshold": float(self._hot_threshold),
            "coolings": float(self.coolings),
        }
