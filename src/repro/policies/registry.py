"""Policy registry: build any tiering system by name.

The names follow the paper's figures; ``memtis-ns`` (no split) and
``memtis-vanilla`` (no split, no warm set) are the Fig. 10/11 ablation
variants.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.policies.arms import ARMSPolicy
from repro.policies.autonuma import AutoNUMAPolicy
from repro.policies.autotiering import AutoTieringPolicy
from repro.policies.base import TieringPolicy
from repro.policies.hemem import HeMemPolicy
from repro.policies.hybridtier import HybridTierPolicy
from repro.policies.multiclock import MultiClockPolicy
from repro.policies.nimble import NimblePolicy
from repro.policies.nomad import NomadPolicy
from repro.policies.static import AllCapacityPolicy, AllFastPolicy
from repro.policies.tierbpf import TierBPFPolicy
from repro.policies.tiering08 import Tiering08Policy
from repro.policies.thermostat import ThermostatPolicy
from repro.policies.tmts import TMTSPolicy
from repro.policies.tpp import TPPPolicy

def _memtis(**kw) -> TieringPolicy:
    # Imported lazily: repro.core depends on repro.policies.base, so a
    # top-level import here would be circular.
    from repro.core.policy import MemtisPolicy

    return MemtisPolicy(**kw)


POLICY_REGISTRY: Dict[str, Callable[..., TieringPolicy]] = {
    "all-capacity": AllCapacityPolicy,
    "all-fast": AllFastPolicy,
    "autonuma": AutoNUMAPolicy,
    "autotiering": AutoTieringPolicy,
    "tiering-0.8": Tiering08Policy,
    "tpp": TPPPolicy,
    "nimble": NimblePolicy,
    "multi-clock": MultiClockPolicy,
    "tmts": TMTSPolicy,
    "thermostat": ThermostatPolicy,
    "hemem": HeMemPolicy,
    # Related-work zoo (PAPERS.md): admission control, non-exclusive
    # transactional tiering, sketched tracking, and drift adaptivity.
    "tierbpf": TierBPFPolicy,
    "nomad": NomadPolicy,
    "hybridtier": HybridTierPolicy,
    "arms": ARMSPolicy,
    "memtis": _memtis,
    "memtis-ns": lambda **kw: _memtis(enable_split=False, **kw),
    "memtis-vanilla": lambda **kw: _memtis(
        enable_split=False, enable_warm_set=False, **kw
    ),
}

#: The Fig. 5 comparison grid in paper legend order: the six baseline
#: systems plus MEMTIS itself (seven columns per figure section).
#: ``tests/test_policy_zoo.py`` asserts this stays a subset of
#: ``POLICY_REGISTRY`` so zoo growth cannot silently break the figures.
FIG5_POLICIES: List[str] = [
    "autonuma",
    "autotiering",
    "tiering-0.8",
    "tpp",
    "nimble",
    "hemem",
    "memtis",
]


def policy_names() -> List[str]:
    return sorted(POLICY_REGISTRY)


def make_policy(name: str, **kwargs) -> TieringPolicy:
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(POLICY_REGISTRY)}"
        ) from None
    return factory(**kwargs)
