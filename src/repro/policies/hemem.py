"""HeMem (SOSP'21) baseline.

Table 1 row: hardware-based sampling (PEBS), no subpage tracking,
recency+frequency promotion and demotion metrics, *static* access-count
thresholds, migrations off the critical path.

The two defects the paper demonstrates (§2.2, Fig. 2; §6.2.9):

1. **Static thresholds.**  A page is hot once its sample count reaches a
   fixed bar; when any count reaches the cooling bar, every count is
   halved.  The classified hot set therefore bears no relation to the
   fast tier's capacity: on PageRank it identifies a few MB (DRAM gets
   filled with arbitrary cold pages), on XSBench it briefly identifies
   more than DRAM holds (an arbitrary subset gets placed).
2. **Dedicated sampling threads.**  HeMem's user-level sampler spins on
   a core; with the application using all 20 cores it loses ~a core of
   throughput (modelled as a contention factor), which Fig. 8's
   16-thread experiment removes.

HeMem also places *small allocations* directly in DRAM regardless of
hotness (the paper measures the resulting "over-allocation", Table 3);
we reproduce this by pinning allocations below a size threshold to the
fast tier.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE
from repro.mem.tiers import FASTEST_TIER, TierIndex
from repro.policies.base import BatchObservation, PolicyContext, TieringPolicy, Traits
from repro.pebs.sampler import SamplerConfig


class HeMemPolicy(TieringPolicy):
    """PEBS sampling with static hot/cooling thresholds."""

    name = "hemem"
    uses_pebs = True
    traits = Traits(
        mechanism="HW-based sampling",
        subpage_tracking=False,
        promotion_metric="recency + frequency",
        demotion_metric="recency + frequency",
        threshold_criteria="static access count",
        critical_path_migration="none",
        page_size_handling="none",
    )

    def __init__(
        self,
        hot_threshold: int = 8,
        cooling_threshold: int = 18,
        migrate_period_ns: float = 100e6,
        small_alloc_fraction: float = 0.03,
        free_headroom: float = 0.02,
        dedicated_core_cost: float = 1.2,
    ):
        super().__init__()
        self.hot_threshold = hot_threshold
        self.cooling_threshold = cooling_threshold
        self.migrate_period_ns = migrate_period_ns
        self.small_alloc_fraction = small_alloc_fraction
        self.free_headroom = free_headroom
        self.dedicated_core_cost = dedicated_core_cost
        self._next_migrate_ns = 0.0
        self._count = None
        self._pinned = None
        self._promote: Set[int] = set()
        self._small_alloc_max = 0
        self.overallocated_bytes = 0
        self.coolings = 0
        self.promotions = 0
        self.demotions = 0
        self.halted_ticks = 0

    def sampler_config(self) -> SamplerConfig:
        # HeMem samples aggressively and never adapts its period.
        return SamplerConfig(load_period=200, store_period=100_000)

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._count = np.zeros(ctx.space.num_vpns, dtype=np.int32)
        self._pinned = np.zeros(ctx.space.num_vpns, dtype=bool)
        total = ctx.tiers.total_capacity_bytes()
        self._small_alloc_max = int(total * self.small_alloc_fraction)

    def choose_alloc_tier(self, nbytes: int) -> TierIndex:
        # Small allocations always go to DRAM (over-allocation); big
        # ones also prefer DRAM and spill per chunk like everyone else.
        return FASTEST_TIER

    def on_region_alloc(self, region) -> None:
        if region.nbytes <= self._small_alloc_max:
            # Pin the small allocation in DRAM: HeMem never demotes these,
            # which is what the paper's Table 3 over-allocation measures.
            self._pinned[region.base_vpn : region.end_vpn] = True
            self.overallocated_bytes += region.nbytes

    def cpu_contention_factor(self) -> float:
        machine = self.ctx.machine
        if machine.app_threads >= machine.cores:
            return 1.0 + self.dedicated_core_cost / machine.cores
        return 1.0

    # -- sample processing ---------------------------------------------------------

    def on_batch(self, obs: BatchObservation) -> float:
        samples = obs.samples
        if samples is None or len(samples) == 0:
            return 0.0
        space = self.ctx.space
        vpns = samples.vpn
        heads = np.where(space.page_huge[vpns], (vpns >> 9) << 9, vpns)
        np.add.at(self._count, heads, 1)
        # Static hot threshold: enqueue capacity pages crossing the bar.
        hot = heads[self._count[heads] >= self.hot_threshold]
        for vpn in np.unique(hot).tolist():
            if space.page_tier[vpn] > FASTEST_TIER:
                self._promote.add(int(vpn))
        # Static cooling: any page at the cooling bar halves every count.
        if len(heads) and int(self._count[heads].max()) >= self.cooling_threshold:
            self._count >>= 1
            self.coolings += 1
        return 0.0

    # -- background migration --------------------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns < self._next_migrate_ns:
            return
        self._next_migrate_ns = now_ns + self.migrate_period_ns
        space = self.ctx.space
        tiers = self.ctx.tiers

        # Anti-thrashing: stop migrating when the classified hot set
        # exceeds DRAM (§7 "HeMem halts both page promotion and demotion
        # when the hot set size exceeds the fast tier size").
        if self._hot_bytes() > tiers.fast.capacity_bytes:
            self.halted_ticks += 1
            self._promote.clear()
            return

        migrator = self.ctx.migrator
        for vpn in sorted(self._promote):
            if space.page_tier[vpn] <= FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            if not tiers.fast.can_alloc(nbytes):
                self._demote_cold(nbytes)
            if not tiers.fast.can_alloc(nbytes):
                break
            migrator.migrate_page(vpn, FASTEST_TIER, critical=False)
            self.promotions += 1
        self._promote.clear()

        headroom = self.headroom_bytes(self.free_headroom)
        if tiers.fast.free_bytes < headroom:
            self._demote_cold(headroom - tiers.fast.free_bytes)

    def _demote_cold(self, nbytes_needed: int) -> None:
        """Demote the coldest unpinned fast-tier pages."""
        space = self.ctx.space
        fast = np.flatnonzero(
            (space.page_tier == FASTEST_TIER) & ~self._pinned
        )
        if len(fast) == 0:
            return
        heads = np.unique(np.where(space.page_huge[fast], (fast >> 9) << 9, fast))
        cold = heads[self._count[heads] < self.hot_threshold]
        order = np.argsort(self._count[cold], kind="stable")
        freed = 0
        for vpn in cold[order].tolist():
            if freed >= nbytes_needed:
                break
            if space.page_tier[vpn] != FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            self.ctx.migrator.migrate_page(vpn, self.demote_target(), critical=False)
            self.demotions += 1
            freed += nbytes

    # -- reporting ------------------------------------------------------------------

    def _hot_bytes(self) -> int:
        space = self.ctx.space
        hot_vpns = np.flatnonzero(self._count >= self.hot_threshold)
        if len(hot_vpns) == 0:
            return 0
        sizes = np.where(space.page_huge[hot_vpns], HUGE_PAGE_SIZE, BASE_PAGE_SIZE)
        return int(sizes.sum())

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self._count is not None:
            self._count[base_vpn : base_vpn + num_vpns] = 0
            self._pinned[base_vpn : base_vpn + num_vpns] = False

    def stats(self) -> Dict[str, float]:
        return {
            "hot_bytes": float(self._hot_bytes()),
            "promotions": float(self.promotions),
            "demotions": float(self.demotions),
            "coolings": float(self.coolings),
            "overallocated_bytes": float(self.overallocated_bytes),
        }
