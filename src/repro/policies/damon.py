"""DAMON region-based access monitor (for the paper's Fig. 1 analysis).

DAMON trades accuracy against overhead through three knobs: the sampling
interval ``s`` and the min/max region counts ``m``/``X`` (Fig. 1's
caption notation ``s-m-X``).  Each sampling tick it checks *one* page's
reference bit per region -- assuming intra-region homogeneity -- and
each aggregation tick it merges regions with similar access counts and
re-splits to stay within bounds.

The paper's finding (§2.1): coarse regions blur distinct access
frequencies (5ms-10-1000), long intervals miss differentiation
(500ms-10K-20K), and the accurate configuration (5ms-10K-20K) costs
72.85% of a CPU.  The monitor therefore cannot give MEMTIS what PEBS
gives it: cheap, exact, subpage-granularity addresses.

``DamonMonitor`` is a passive policy: it never migrates, it only
observes; the Fig. 1 experiment runs it over a workload and renders the
recorded heat map plus the modelled CPU overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.policies.base import PolicyContext, TieringPolicy, Traits


@dataclass
class DamonRegion:
    """One monitored virtual region."""

    start_vpn: int
    end_vpn: int  # exclusive
    nr_accesses: int = 0
    sampled_vpn: int = -1

    @property
    def num_vpns(self) -> int:
        return self.end_vpn - self.start_vpn


@dataclass(frozen=True)
class DamonConfig:
    """An ``s-m-X`` configuration from Fig. 1."""

    sampling_interval_ns: float
    min_regions: int
    max_regions: int
    aggregation_samples: int = 20
    check_cost_ns: float = 30.0
    label_override: str = ""

    def label(self) -> str:
        if self.label_override:
            return self.label_override
        return (
            f"{self.sampling_interval_ns / 1e6:g}ms-"
            f"{self.min_regions}-{self.max_regions}"
        )


#: The three configurations of Fig. 1.  Labels carry the *paper's*
#: parameter values; the actual intervals and region counts are scaled
#: with the simulation's time/footprint compression (a 654.roms run
#: lasts ~0.5 simulated seconds over ~140 MiB instead of ~250 s over
#: 10.3 GB), preserving the interval:runtime and region:footprint
#: proportions that create the paper's trade-off.
FIG1_CONFIGS = {
    "5ms-10-1000": DamonConfig(
        0.2e6, 10, 125, label_override="5ms-10-1000"
    ),
    "500ms-10K-20K": DamonConfig(
        20e6, 1250, 2500, label_override="500ms-10K-20K"
    ),
    "5ms-10K-20K": DamonConfig(
        0.2e6, 1250, 2500, label_override="5ms-10K-20K"
    ),
}


class DamonMonitor(TieringPolicy):
    """Region-sampling monitor; records an address/time heat map."""

    name = "damon"
    traits = Traits(
        mechanism="PT scanning (region sampling)",
        subpage_tracking=False,
        promotion_metric="region access count",
        demotion_metric="-",
        threshold_criteria="-",
        critical_path_migration="none",
        page_size_handling="none",
    )

    def __init__(self, config: DamonConfig):
        super().__init__()
        self.config = config
        self.regions: List[DamonRegion] = []
        self._next_sample_ns = 0.0
        self._samples_since_aggregation = 0
        #: (now_ns, [(start_vpn, end_vpn, nr_accesses)]) per aggregation.
        self.snapshots: List[Tuple[float, List[Tuple[int, int, int]]]] = []
        self.monitor_cpu_ns = 0.0
        self.elapsed_ns = 0.0

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)

    # -- region bootstrapping -----------------------------------------------------

    def _init_regions(self) -> None:
        space = self.ctx.space
        mapped = np.flatnonzero(space.page_tier >= 0)
        if len(mapped) == 0:
            return
        lo, hi = int(mapped[0]), int(mapped[-1]) + 1
        count = max(self.config.min_regions, 10)
        bounds = np.linspace(lo, hi, count + 1, dtype=np.int64)
        self.regions = [
            DamonRegion(int(bounds[i]), int(bounds[i + 1]))
            for i in range(count)
            if bounds[i + 1] > bounds[i]
        ]

    # -- sampling ----------------------------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns < self._next_sample_ns:
            return
        self._next_sample_ns = now_ns + self.config.sampling_interval_ns
        self.elapsed_ns = now_ns
        if not self.regions:
            self._init_regions()
            if not self.regions:
                return
        space = self.ctx.space
        rng = self.ctx.rng
        for region in self.regions:
            if region.sampled_vpn >= 0 and space.ref_bit[region.sampled_vpn]:
                region.nr_accesses += 1
            # Pick the next page to check and clear its accessed bit.
            vpn = int(rng.integers(region.start_vpn, region.end_vpn))
            space.ref_bit[vpn] = False
            region.sampled_vpn = vpn
        self.monitor_cpu_ns += len(self.regions) * self.config.check_cost_ns

        self._samples_since_aggregation += 1
        if self._samples_since_aggregation >= self.config.aggregation_samples:
            self._samples_since_aggregation = 0
            self._aggregate(now_ns)

    def _aggregate(self, now_ns: float) -> None:
        self.snapshots.append(
            (now_ns, [(r.start_vpn, r.end_vpn, r.nr_accesses) for r in self.regions])
        )
        self._merge_similar()
        self._split_to_min()
        for region in self.regions:
            region.nr_accesses = 0

    def _merge_similar(self, threshold: int = 2) -> None:
        merged: List[DamonRegion] = []
        for region in self.regions:
            if (
                merged
                and merged[-1].end_vpn == region.start_vpn
                and abs(merged[-1].nr_accesses - region.nr_accesses) <= threshold
                and len(self.regions) > self.config.min_regions
            ):
                merged[-1].end_vpn = region.end_vpn
                merged[-1].nr_accesses = (
                    merged[-1].nr_accesses + region.nr_accesses
                ) // 2
            else:
                merged.append(region)
        self.regions = merged

    def _split_to_min(self) -> None:
        while len(self.regions) < self.config.min_regions:
            # Split the largest region in two.
            idx = max(range(len(self.regions)), key=lambda i: self.regions[i].num_vpns)
            region = self.regions[idx]
            if region.num_vpns < 2:
                break
            mid = region.start_vpn + region.num_vpns // 2
            self.regions[idx : idx + 1] = [
                DamonRegion(region.start_vpn, mid, region.nr_accesses),
                DamonRegion(mid, region.end_vpn, region.nr_accesses),
            ]
        # Respect the max bound by merging the most similar neighbours.
        while len(self.regions) > self.config.max_regions:
            best, best_diff = 0, None
            for i in range(len(self.regions) - 1):
                diff = abs(
                    self.regions[i].nr_accesses - self.regions[i + 1].nr_accesses
                )
                if best_diff is None or diff < best_diff:
                    best, best_diff = i, diff
            a, b = self.regions[best], self.regions.pop(best + 1)
            a.end_vpn = b.end_vpn
            a.nr_accesses = (a.nr_accesses + b.nr_accesses) // 2

    # -- reporting ----------------------------------------------------------------

    def cpu_overhead(self) -> float:
        """Fraction of one CPU spent monitoring (Fig. 1's percentages)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.monitor_cpu_ns / self.elapsed_ns

    def heatmap(self, num_addr_bins: int = 64) -> np.ndarray:
        """(time, address) matrix of region access counts."""
        if not self.snapshots:
            return np.zeros((0, num_addr_bins))
        lo = min(s for _t, regs in self.snapshots for s, _e, _a in regs)
        hi = max(e for _t, regs in self.snapshots for _s, e, _a in regs)
        span = max(1, hi - lo)
        grid = np.zeros((len(self.snapshots), num_addr_bins))
        for row, (_now, regs) in enumerate(self.snapshots):
            for start, end, accesses in regs:
                b0 = int((start - lo) / span * num_addr_bins)
                b1 = max(b0 + 1, int((end - lo) / span * num_addr_bins))
                grid[row, b0:b1] = accesses
        return grid

    def stats(self) -> Dict[str, float]:
        return {
            "regions": float(len(self.regions)),
            "cpu_overhead": self.cpu_overhead(),
        }
