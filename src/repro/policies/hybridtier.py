"""HybridTier-style sketch-based hotness tracking (arXiv:2312.04789).

Full per-page access histograms cost memory proportional to the managed
address space; HybridTier's answer is a **count-min sketch**: a small
fixed-size ``depth x width`` counter table.  Each sampled access
increments one counter per row (row-specific hash of the page number);
a page's estimated frequency is the *minimum* over its row counters.
The estimate never under-counts, and the whole tracker fits in a few
cache lines regardless of workload footprint.

Rows hash by multiply-shift with fixed odd 64-bit constants -- no RNG,
so runs are bit-reproducible and the sketch state is a plain numpy
array the generic policy checkpoint captures for free.

Aging halves every counter whenever any cell crosses a saturation bar,
the sketch analogue of HeMem's global cooling.

Preserved defect (inherent to count-min, acknowledged in the paper's
§4.2 accuracy analysis): hash **collisions only inflate** estimates.  A
cold page sharing all ``depth`` buckets with hot pages reads as hot and
gets promoted, evicting genuinely warm data; the smaller the sketch or
the bigger the footprint, the worse the false-positive promotion rate.
The deliberately small default width makes the effect visible at
simulation scale (``sketch_fill`` in stats tracks bucket pressure).
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE
from repro.mem.tiers import FASTEST_TIER
from repro.pebs.sampler import SamplerConfig
from repro.policies.base import BatchObservation, PolicyContext, TieringPolicy, Traits

#: Fixed odd multipliers for multiply-shift hashing, one per sketch row
#: (split-mix style constants; any fixed odd value works, these just
#: decorrelate the rows).
_HASH_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xBF58476D1CE4E5B9,
    0x94D049BB133111EB,
    0xD6E8FEB86659FD93,
)


class HybridTierPolicy(TieringPolicy):
    """Count-min-sketch frequency tracking with static promote/demote bars."""

    name = "hybridtier"
    uses_pebs = True
    traits = Traits(
        mechanism="HW-based sampling",
        subpage_tracking=False,
        promotion_metric="sketched frequency",
        demotion_metric="sketched frequency",
        threshold_criteria="static access count",
        critical_path_migration="none",
        page_size_handling="none",
    )

    def __init__(
        self,
        width: int = 4096,
        depth: int = 4,
        hot_threshold: int = 4,
        saturation: int = 64,
        migrate_period_ns: float = 100e6,
        free_headroom: float = 0.02,
    ):
        super().__init__()
        if width & (width - 1):
            raise ValueError("sketch width must be a power of two")
        if not 1 <= depth <= len(_HASH_MULTIPLIERS):
            raise ValueError(f"depth must be in 1..{len(_HASH_MULTIPLIERS)}")
        self.width = width
        self.depth = depth
        self.hot_threshold = hot_threshold
        self.saturation = saturation
        self.migrate_period_ns = migrate_period_ns
        self.free_headroom = free_headroom
        self._shift = 64 - int(width).bit_length() + 1
        self._sketch = np.zeros((depth, width), dtype=np.int32)
        self._candidates: Set[int] = set()
        self._next_migrate_ns = 0.0
        self.promotions = 0
        self.demotions = 0
        self.decays = 0

    def sampler_config(self) -> SamplerConfig:
        return SamplerConfig(load_period=200, store_period=100_000)

    # -- sketch ----------------------------------------------------------------

    def _buckets(self, heads: np.ndarray) -> np.ndarray:
        """``(depth, n)`` bucket indices for page heads."""
        keys = heads.astype(np.uint64)
        rows = []
        for d in range(self.depth):
            mult = np.uint64(_HASH_MULTIPLIERS[d])
            rows.append((keys * mult) >> np.uint64(self._shift))
        return np.stack(rows).astype(np.int64)

    def _estimate(self, heads: np.ndarray) -> np.ndarray:
        """Count-min estimate (min over rows) for each head."""
        buckets = self._buckets(heads)
        est = self._sketch[0, buckets[0]]
        for d in range(1, self.depth):
            est = np.minimum(est, self._sketch[d, buckets[d]])
        return est

    # -- sample processing -----------------------------------------------------

    def on_batch(self, obs: BatchObservation) -> float:
        samples = obs.samples
        if samples is None or len(samples) == 0:
            return 0.0
        space = self.ctx.space
        vpns = samples.vpn
        heads = np.where(space.page_huge[vpns], (vpns >> 9) << 9, vpns)
        buckets = self._buckets(heads)
        for d in range(self.depth):
            np.add.at(self._sketch[d], buckets[d], 1)
        uniq = np.unique(heads)
        hot = uniq[self._estimate(uniq) >= self.hot_threshold]
        for vpn in hot.tolist():
            if space.page_tier[vpn] > FASTEST_TIER:
                self._candidates.add(int(vpn))
        if int(self._sketch.max()) >= self.saturation:
            self._sketch >>= 1
            self.decays += 1
        return 0.0

    # -- background migration --------------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns < self._next_migrate_ns:
            return
        self._next_migrate_ns = now_ns + self.migrate_period_ns
        space = self.ctx.space
        tiers = self.ctx.tiers
        migrator = self.ctx.migrator

        for vpn in sorted(self._candidates):
            if space.page_tier[vpn] <= FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            if not tiers.fast.can_alloc(nbytes):
                self._demote_cold(nbytes)
            if not tiers.fast.can_alloc(nbytes):
                break
            migrator.migrate_page(vpn, FASTEST_TIER, critical=False)
            self.promotions += 1
        self._candidates.clear()

        headroom = self.headroom_bytes(self.free_headroom)
        if tiers.fast.free_bytes < headroom:
            self._demote_cold(headroom - tiers.fast.free_bytes)

    def _demote_cold(self, nbytes_needed: int) -> None:
        """Demote fast pages with the lowest sketched estimates.

        Collisions bite here too: a cold page aliased with a hot one
        over-estimates and survives demotion rounds it should lose.
        """
        space = self.ctx.space
        fast = np.flatnonzero(space.page_tier == FASTEST_TIER)
        if len(fast) == 0:
            return
        heads = np.unique(np.where(space.page_huge[fast], (fast >> 9) << 9, fast))
        order = np.argsort(self._estimate(heads), kind="stable")
        freed = 0
        for vpn in heads[order].tolist():
            if freed >= nbytes_needed:
                break
            if space.page_tier[vpn] != FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            self.ctx.migrator.migrate_page(vpn, self.demote_target(), critical=False)
            self.demotions += 1
            freed += nbytes

    # -- bookkeeping -----------------------------------------------------------

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        # The sketch cannot forget individual pages (that is the point
        # of a sketch); stale counts age out through decay.  Only the
        # candidate queue is scrubbed.
        self._candidates = {
            v for v in self._candidates if not base_vpn <= v < base_vpn + num_vpns
        }

    def stats(self) -> Dict[str, float]:
        return {
            "promotions": float(self.promotions),
            "demotions": float(self.demotions),
            "decays": float(self.decays),
            "sketch_fill": float(np.count_nonzero(self._sketch))
            / float(self._sketch.size),
        }
