"""TMTS-style policy (ASPLOS'23, Google) -- the paper's §8 discussion.

Table 1 row: PT scanning + HW-based sampling, recency+frequency
promotion, recency demotion, static count for promotion with an
*adaptive demotion age threshold*, no critical-path migration, and
"split upon demotion" (every demoted huge page is splintered, with no
skew consideration -- contrast §4.3).

Design intent (§8): TMTS replaces a *fraction* of DRAM with slower
memory while protecting application SLOs.  It targets a secondary-tier
residency ratio (STRR ~25%) by adapting the demotion *age* threshold
over a cold-age histogram, and promotes pages cheaply (one PEBS sample
or two scan hits).  The paper argues this breaks down when the hot set
exceeds DRAM (1:8/1:16 configs) -- which this implementation lets you
measure directly.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE, SUBPAGES_PER_HUGE
from repro.mem.tiers import FASTEST_TIER
from repro.pebs.sampler import SamplerConfig
from repro.policies.base import BatchObservation, PolicyContext, TieringPolicy, Traits


class TMTSPolicy(TieringPolicy):
    """Adaptive-cold-age demotion, sample-once promotion, split-on-demote."""

    name = "tmts"
    uses_pebs = True
    traits = Traits(
        mechanism="PT scanning & HW-based sampling",
        subpage_tracking=False,
        promotion_metric="recency + frequency",
        demotion_metric="recency",
        threshold_criteria="static count (promo) / period never accessed (demo)",
        critical_path_migration="none",
        page_size_handling="split upon demotion",
    )

    def __init__(
        self,
        target_strr: float = 0.25,
        scan_period_ns: float = 20e6,
        migrate_period_ns: float = 2e6,
        age_bins: int = 16,
    ):
        super().__init__()
        self.target_strr = target_strr
        self.scan_period_ns = scan_period_ns
        self.migrate_period_ns = migrate_period_ns
        self.age_bins = age_bins
        self._next_scan_ns = 0.0
        self._next_migrate_ns = 0.0
        self._idle_age = None  # scans since last reference, per vpn
        self._promote = set()
        self.demotion_age_threshold = 2
        self.promotions = 0
        self.demotions = 0
        self.splits_on_demotion = 0

    def sampler_config(self) -> SamplerConfig:
        return SamplerConfig(load_period=200, store_period=100_000)

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._idle_age = np.zeros(ctx.space.num_vpns, dtype=np.int16)

    # -- promotion: one PEBS sample is enough ------------------------------------

    def on_batch(self, obs: BatchObservation) -> float:
        if obs.samples is None or not len(obs.samples):
            return 0.0
        space = self.ctx.space
        vpns = obs.samples.vpn
        heads = np.where(space.page_huge[vpns], (vpns >> 9) << 9, vpns)
        on_capacity = heads[space.page_tier[heads] > FASTEST_TIER]
        self._promote.update(int(v) for v in np.unique(on_capacity))
        return 0.0

    # -- scanning: cold-age histogram + adaptive threshold --------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns >= self._next_scan_ns:
            self._next_scan_ns = now_ns + self.scan_period_ns
            self._scan()
        if now_ns >= self._next_migrate_ns:
            self._next_migrate_ns = now_ns + self.migrate_period_ns
            self._migrate()

    def _scan(self) -> None:
        """Harvest reference bits into idle ages; adapt the demotion age."""
        space = self.ctx.space
        mapped = space.page_tier >= 0
        referenced = space.ref_bit & mapped
        self._idle_age[referenced] = 0
        idle = mapped & ~referenced
        self._idle_age[idle] = np.minimum(
            self._idle_age[idle] + 1, self.age_bins - 1
        )
        space.ref_bit[mapped] = False

        # Cold-age histogram (kstaled-style): pick the smallest age whose
        # tail (pages at least that idle) matches the STRR target.
        mapped_ages = self._idle_age[np.flatnonzero(mapped)]
        total = len(mapped_ages)
        if total == 0:
            return
        counts = np.bincount(mapped_ages, minlength=self.age_bins)
        target_pages = int(total * self.target_strr)
        tail = 0
        threshold = self.age_bins - 1
        for age in range(self.age_bins - 1, 0, -1):
            tail += int(counts[age])
            if tail >= target_pages:
                threshold = age
                break
        self.demotion_age_threshold = max(1, threshold)

    # -- migration --------------------------------------------------------------------

    def _migrate(self) -> None:
        space = self.ctx.space
        tiers = self.ctx.tiers
        migrator = self.ctx.migrator

        # Demote pages idle beyond the adaptive age (split huge first).
        fast = np.flatnonzero(space.page_tier == FASTEST_TIER)
        if len(fast):
            heads = np.unique(np.where(space.page_huge[fast],
                                       (fast >> 9) << 9, fast))
            old = heads[self._idle_age[heads] >= self.demotion_age_threshold]
            headroom = self.headroom_bytes(0.02)
            for vpn in old.tolist():
                if tiers.fast.free_bytes >= headroom:
                    break
                if space.page_tier[vpn] != FASTEST_TIER:
                    continue
                if space.page_huge[vpn]:
                    # "All demoted huge pages ... undergo splitting upon
                    # demotion" (§8) -- no skew consideration.
                    hpn = vpn >> 9
                    touched = space.touched[vpn : vpn + SUBPAGES_PER_HUGE]
                    demote_to = self.demote_target()
                    subpage_tiers = [
                        demote_to if touched[j] else None
                        for j in range(SUBPAGES_PER_HUGE)
                    ]
                    migrator.split_huge(hpn, subpage_tiers, critical=False)
                    self.splits_on_demotion += 1
                else:
                    migrator.migrate_base(vpn, self.demote_target(), critical=False)
                self.demotions += 1

        # Promote sampled pages while room remains.
        for vpn in sorted(self._promote):
            if space.page_tier[vpn] <= FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            if not tiers.fast.can_alloc(nbytes):
                break
            migrator.migrate_page(vpn, FASTEST_TIER, critical=False)
            self.promotions += 1
        self._promote.clear()

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self._idle_age is not None:
            self._idle_age[base_vpn : base_vpn + num_vpns] = 0

    def stats(self) -> Dict[str, float]:
        return {
            "promotions": float(self.promotions),
            "demotions": float(self.demotions),
            "splits_on_demotion": float(self.splits_on_demotion),
            "demotion_age_threshold": float(self.demotion_age_threshold),
        }
