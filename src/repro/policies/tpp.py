"""TPP -- Transparent Page Placement (ASPLOS'23, Meta) baseline.

Table 1 row: page-fault tracking, recency+frequency promotion (2Q LRU
extension: promote on the second access), recency demotion, static
access-count threshold (two), promotion on the critical path.

Mechanism: allocations target the fast tier while a demotion daemon
keeps free headroom there (Meta's production design for the 2:1
configuration, §6.2.8); capacity-tier pages are tracked with hint
faults and promoted -- in the fault handler -- once they fault twice.
The known weakness the paper exploits (§6.2.3): the coarse 2Q
classification identifies *more* hot pages than DRAM can hold in small
fast-tier configurations, so TPP keeps shuttling pages between tiers
instead of pinning the truly hottest set.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mem.pages import BASE_PAGE_SIZE, HUGE_PAGE_SIZE, SUBPAGES_PER_HUGE
from repro.mem.tiers import FASTEST_TIER, TierIndex
from repro.policies.base import PolicyContext, TieringPolicy, Traits


class TPPPolicy(TieringPolicy):
    """Fast-tier-first allocation, promote-on-second-fault, LRU demotion."""

    name = "tpp"
    traits = Traits(
        mechanism="page fault",
        subpage_tracking=False,
        promotion_metric="recency + frequency",
        demotion_metric="recency",
        threshold_criteria="static access count",
        critical_path_migration="promotion",
        page_size_handling="none",
    )

    PROMOTION_THRESHOLD = 2  # faults before promotion

    def __init__(
        self,
        scan_period_ns: float = 12e6,
        scan_fraction: float = 0.15,
        free_headroom: float = 0.02,
        fault_count_decay_ns: float = 400e6,
    ):
        super().__init__()
        self.scan_period_ns = scan_period_ns
        self.scan_fraction = scan_fraction
        self.free_headroom = free_headroom
        self.fault_count_decay_ns = fault_count_decay_ns
        self._next_scan_ns = 0.0
        self._next_decay_ns = fault_count_decay_ns
        self._scan_cursor = 0
        self._fault_count = None
        self.promotions = 0
        self.demotions = 0

    def bind(self, ctx: PolicyContext) -> None:
        super().bind(ctx)
        self._ensure_protection_mask()
        self._fault_count = np.zeros(ctx.space.num_vpns, dtype=np.int16)

    def choose_alloc_tier(self, nbytes: int) -> TierIndex:
        # New pages go to DRAM; the demotion daemon maintains headroom.
        return FASTEST_TIER

    # -- scanning + background demotion ------------------------------------------

    def on_tick(self, now_ns: float) -> None:
        if now_ns >= self._next_decay_ns:
            # 2Q aging: forget old fault history so "second fault" means
            # "second fault recently".
            self._next_decay_ns = now_ns + self.fault_count_decay_ns
            np.right_shift(self._fault_count, 1, out=self._fault_count)
        if now_ns < self._next_scan_ns:
            return
        self._next_scan_ns = now_ns + self.scan_period_ns
        space = self.ctx.space
        # TPP tracks only capacity-tier (CXL/NVM) pages with hint faults.
        cap_vpns = np.flatnonzero(space.page_tier > FASTEST_TIER)
        if len(cap_vpns):
            window = max(SUBPAGES_PER_HUGE, int(len(cap_vpns) * self.scan_fraction))
            start = self._scan_cursor % len(cap_vpns)
            take = cap_vpns[start : start + window]
            if len(take) < window:
                take = np.concatenate([take, cap_vpns[: window - len(take)]])
            self._scan_cursor = (start + window) % len(cap_vpns)
            self.protection_mask[take] = True
        self._demote_for_headroom()

    def _demote_for_headroom(self) -> None:
        tiers = self.ctx.tiers
        target = self.headroom_bytes(self.free_headroom)
        if tiers.fast.free_bytes >= target:
            return
        space = self.ctx.space
        fast_vpns = np.flatnonzero(space.page_tier == FASTEST_TIER)
        if len(fast_vpns) == 0:
            return
        # LRU approximation: only *inactive* (non-referenced) pages are
        # demotion candidates; when the whole fast tier is active the
        # demotion daemon stalls, exactly like an empty inactive list.
        inactive = fast_vpns[~space.ref_bit[fast_vpns]]
        need = target - tiers.fast.free_bytes
        for vpn in inactive.tolist():
            if need <= 0:
                break
            if space.page_tier[vpn] != FASTEST_TIER:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[vpn] else BASE_PAGE_SIZE
            self.ctx.migrator.migrate_page(vpn, self.demote_target(), critical=False)
            self.demotions += 1
            need -= nbytes
        space.ref_bit[fast_vpns] = False

    # -- fault handler ---------------------------------------------------------------

    def on_hint_faults(self, vpns: np.ndarray) -> float:
        space = self.ctx.space
        critical_ns = 0.0
        for vpn in vpns.tolist():
            rep = self.page_rep_vpn(vpn)
            if space.page_huge[vpn]:
                self.protection_mask[rep : rep + SUBPAGES_PER_HUGE] = False
            else:
                self.protection_mask[vpn] = False
            self._fault_count[rep] += 1
            if space.page_tier[rep] <= FASTEST_TIER:
                continue
            if self._fault_count[rep] < self.PROMOTION_THRESHOLD:
                continue
            nbytes = HUGE_PAGE_SIZE if space.page_huge[rep] else BASE_PAGE_SIZE
            if not self.ctx.tiers.fast.can_alloc(nbytes):
                continue
            critical_ns += self.ctx.migrator.migrate_page(
                rep, FASTEST_TIER, critical=True
            )
            self._fault_count[rep] = 0
            self.promotions += 1
        return critical_ns

    def on_unmap(self, base_vpn: int, num_vpns: int) -> None:
        if self.protection_mask is not None:
            self.protection_mask[base_vpn : base_vpn + num_vpns] = False
        if self._fault_count is not None:
            self._fault_count[base_vpn : base_vpn + num_vpns] = 0

    def stats(self) -> Dict[str, float]:
        return {
            "promotions": float(self.promotions),
            "demotions": float(self.demotions),
        }
