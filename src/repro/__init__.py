"""repro: a faithful simulation-scale reproduction of MEMTIS (SOSP 2023).

MEMTIS is a tiered-memory system that (1) classifies pages as hot, warm
or cold from the *full access-frequency distribution* (a 16-bin
exponential histogram) instead of static thresholds, and (2) decides
page sizes dynamically, splitting huge pages whose subpage accesses are
highly skewed so only the hot subpages occupy fast memory.

Quick start::

    from repro import run_normalized

    out = run_normalized("silo", "memtis", ratio="1:8")
    print(out["normalized"])           # speedup vs the all-NVM baseline
    print(out["result"].fast_hit_ratio)

Public surface:

* :class:`repro.sim.runner.RunSpec` -- frozen, hashable description of
  one run: ``spec.run()`` executes it with persistent result caching,
  :func:`repro.sim.sweep.run_sweep` fans many specs out over worker
  processes;
* :func:`repro.sim.runner.run_experiment` / :func:`run_normalized` --
  one-call experiments by workload/policy name (thin RunSpec wrappers);
* :class:`repro.sim.engine.Simulation` -- the engine, for custom setups;
* :class:`repro.core.MemtisPolicy` and :mod:`repro.policies` -- MEMTIS
  and the six baselines;
* :mod:`repro.workloads` -- the eight synthetic benchmarks;
* :mod:`repro.experiments` -- regenerators for every paper table/figure.
"""

from repro.core import MemtisConfig, MemtisPolicy
from repro.policies import make_policy, policy_names
from repro.sim import (
    MachineSpec,
    ResultCache,
    RunSpec,
    ScaleSpec,
    SimResult,
    Simulation,
    run_experiment,
    run_normalized,
    run_sweep,
)
from repro.workloads import make_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "MemtisConfig",
    "MemtisPolicy",
    "make_policy",
    "policy_names",
    "MachineSpec",
    "ResultCache",
    "RunSpec",
    "ScaleSpec",
    "SimResult",
    "Simulation",
    "run_experiment",
    "run_normalized",
    "run_sweep",
    "make_workload",
    "workload_names",
    "__version__",
]
